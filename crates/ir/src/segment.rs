//! Index persistence: writing an [`InvertedIndex`] to a single-file segment
//! and opening it back for serving.
//!
//! The storage layer ([`x100_storage::segment`]) owns the file format —
//! checksummed 64-byte-aligned sections, prefix-sum block directories,
//! open-time verification of every byte. This module owns the *index-level*
//! encoding on top of it: which sections exist, how the configuration,
//! vocabulary, document table and posting offsets serialize, and the
//! cross-section consistency checks (offsets vs. document frequencies vs.
//! column lengths) that make a reopened index safe to serve.
//!
//! A reopened index is **bit-identical** to the one written: posting and
//! score blocks come back byte-for-byte (and are decoded lazily through the
//! buffer pool, a miss being a real `pread`), the quantizer is restored from
//! its exact bits, and collection statistics are recomputed from the
//! document lengths with the same fold the build path uses.

use std::path::Path;

use x100_compress::Codec;
use x100_storage::{
    Column, SectionKind, SegmentError, SegmentReader, SegmentWriter, StringColumn,
    StringColumnBuilder,
};

use crate::bm25::Quantizer;
use crate::columns::posting_codecs;
use crate::index::{IndexConfig, InvertedIndex, Materialize};

/// Fixed size of the serialized [`SectionKind::Meta`] payload.
const META_LEN: usize = 56;

/// Everything [`InvertedIndex::from_segment_parts`] needs to assemble a
/// served index, decoded and cross-validated from an open segment.
pub(crate) struct SegmentParts {
    pub config: IndexConfig,
    pub vocab: Vec<String>,
    pub doc_names: StringColumn,
    pub doc_lens: Vec<i32>,
    pub doc_freqs: Vec<u32>,
    pub offsets: Vec<usize>,
    pub docid: Column,
    pub tf: Column,
    pub score: Option<Column>,
    pub quantizer: Option<Quantizer>,
}

impl InvertedIndex {
    /// Writes the index to a segment file at `path`, streaming compressed
    /// columns block-at-a-time. Returns the segment size in bytes.
    pub fn write_segment(&self, path: impl AsRef<Path>) -> Result<u64, SegmentError> {
        write_segment_file(self, None, path.as_ref())
    }

    /// Writes a per-partition segment: like [`Self::write_segment`] plus a
    /// [`SectionKind::GlobalIds`] section mapping each local docid to its
    /// collection-wide id, so a cluster can be reassembled from segments.
    pub fn write_partition_segment(
        &self,
        global_ids: &[u32],
        path: impl AsRef<Path>,
    ) -> Result<u64, SegmentError> {
        assert_eq!(
            global_ids.len(),
            self.doc_lens().len(),
            "one global id per document"
        );
        write_segment_file(self, Some(global_ids), path.as_ref())
    }

    /// Opens a segment written by [`Self::write_segment`]. The posting (and
    /// score) columns come back disk-backed: blocks are `pread` on first
    /// touch, cached, dropped on buffer-pool eviction, and re-read on the
    /// next access.
    pub fn open_segment(path: impl AsRef<Path>) -> Result<Self, SegmentError> {
        Ok(open_segment_file(path.as_ref())?.0)
    }

    /// Opens a per-partition segment, returning the index together with its
    /// local-to-global docid map.
    pub fn open_partition_segment(
        path: impl AsRef<Path>,
    ) -> Result<(Self, Vec<u32>), SegmentError> {
        let (index, global_ids) = open_segment_file(path.as_ref())?;
        let global_ids = global_ids.ok_or(SegmentError::Corrupt(
            "partition segment lacks a global-ids section",
        ))?;
        Ok((index, global_ids))
    }
}

/// The score column's codec for each materialization variant.
fn score_codec(materialize: Materialize) -> Option<Codec> {
    match materialize {
        Materialize::None => None,
        Materialize::F32 => Some(Codec::Raw),
        Materialize::Quantized8 => Some(Codec::Pfor { width: 8 }),
    }
}

fn encode_meta(index: &InvertedIndex) -> Vec<u8> {
    let cfg = index.config();
    let (lower, upper, q) = index
        .quantizer()
        .map(|qz| (qz.lower, qz.upper, qz.q))
        .unwrap_or((0.0, 0.0, 0));
    let mut meta = Vec::with_capacity(META_LEN);
    meta.push(u8::from(cfg.compress));
    meta.push(match cfg.materialize {
        Materialize::None => 0,
        Materialize::F32 => 1,
        Materialize::Quantized8 => 2,
    });
    meta.push(u8::from(index.quantizer().is_some()));
    meta.push(0);
    meta.extend_from_slice(&cfg.params.k1.to_bits().to_le_bytes());
    meta.extend_from_slice(&cfg.params.b.to_bits().to_le_bytes());
    meta.extend_from_slice(&lower.to_bits().to_le_bytes());
    meta.extend_from_slice(&upper.to_bits().to_le_bytes());
    meta.extend_from_slice(&q.to_le_bytes());
    meta.extend_from_slice(&(cfg.block_size as u64).to_le_bytes());
    meta.extend_from_slice(&(index.num_terms() as u64).to_le_bytes());
    meta.extend_from_slice(&(index.doc_lens().len() as u64).to_le_bytes());
    meta.extend_from_slice(&(index.num_postings() as u64).to_le_bytes());
    debug_assert_eq!(meta.len(), META_LEN);
    meta
}

/// `[u32 length][UTF-8 bytes]` per string, in order.
fn encode_strings<'a>(strings: impl Iterator<Item = &'a str>) -> Vec<u8> {
    let mut out = Vec::new();
    for s in strings {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    out
}

fn write_segment_file(
    index: &InvertedIndex,
    global_ids: Option<&[u32]>,
    path: &Path,
) -> Result<u64, SegmentError> {
    let num_docs = index.doc_lens().len();
    let num_terms = index.num_terms();
    let mut w = SegmentWriter::create(path)?;
    w.write_section(SectionKind::Meta, &encode_meta(index))?;
    w.write_section(
        SectionKind::Terms,
        &encode_strings(index.term_strings().into_iter()),
    )?;
    w.write_section(
        SectionKind::DocNames,
        &encode_strings((0..num_docs).map(|d| {
            index
                .doc_name(d as u32)
                .expect("every docid below num_docs has a name")
        })),
    )?;
    let mut lens = Vec::with_capacity(num_docs * 4);
    for &l in index.doc_lens().iter() {
        lens.extend_from_slice(&l.to_le_bytes());
    }
    w.write_section(SectionKind::DocLens, &lens)?;
    let mut freqs = Vec::with_capacity(num_terms * 4);
    for t in 0..num_terms {
        freqs.extend_from_slice(&index.doc_freq(t as u32).to_le_bytes());
    }
    w.write_section(SectionKind::DocFreqs, &freqs)?;
    let mut offsets = Vec::with_capacity((num_terms + 1) * 8);
    for t in 0..num_terms {
        offsets.extend_from_slice(&(index.term_range(t as u32).start as u64).to_le_bytes());
    }
    offsets.extend_from_slice(&(index.num_postings() as u64).to_le_bytes());
    w.write_section(SectionKind::Offsets, &offsets)?;
    let column = |name: &str| {
        index
            .td()
            .column(name)
            .expect("index TD table always has its posting columns")
    };
    w.write_column_section(SectionKind::ColDocid, column("docid"))?;
    w.write_column_section(SectionKind::ColTf, column("tf"))?;
    if index.has_materialized_scores() {
        w.write_column_section(SectionKind::ColScore, column("score"))?;
    }
    if let Some(ids) = global_ids {
        let mut bytes = Vec::with_capacity(ids.len() * 4);
        for &g in ids {
            bytes.extend_from_slice(&g.to_le_bytes());
        }
        w.write_section(SectionKind::GlobalIds, &bytes)?;
    }
    w.finish()
}

/// Decoded [`SectionKind::Meta`] payload.
struct Meta {
    config: IndexConfig,
    quantizer: Option<Quantizer>,
    num_terms: usize,
    num_docs: usize,
    num_postings: usize,
}

fn decode_meta(bytes: &[u8]) -> Result<Meta, SegmentError> {
    if bytes.len() != META_LEN {
        return Err(SegmentError::Corrupt("meta section has the wrong length"));
    }
    let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
    let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
    let compress = match bytes[0] {
        0 => false,
        1 => true,
        _ => return Err(SegmentError::Corrupt("bad compression flag")),
    };
    let materialize = match bytes[1] {
        0 => Materialize::None,
        1 => Materialize::F32,
        2 => Materialize::Quantized8,
        _ => return Err(SegmentError::Corrupt("bad materialization tag")),
    };
    let has_quantizer = match bytes[2] {
        0 => false,
        1 => true,
        _ => return Err(SegmentError::Corrupt("bad quantizer flag")),
    };
    if has_quantizer != (materialize == Materialize::Quantized8) {
        return Err(SegmentError::Corrupt(
            "quantizer flag disagrees with materialization",
        ));
    }
    if bytes[3] != 0 {
        return Err(SegmentError::Corrupt("nonzero reserved meta field"));
    }
    let params = crate::bm25::Bm25Params {
        k1: f32::from_bits(u32_at(4)),
        b: f32::from_bits(u32_at(8)),
    };
    let quantizer = has_quantizer.then(|| Quantizer {
        lower: f32::from_bits(u32_at(12)),
        upper: f32::from_bits(u32_at(16)),
        q: u32_at(20),
    });
    let block_size = usize::try_from(u64_at(24))
        .ok()
        .filter(|&b| b > 0 && b.is_multiple_of(x100_compress::ENTRY_POINT_STRIDE))
        .ok_or(SegmentError::Corrupt("bad index block size"))?;
    let num_terms = usize::try_from(u64_at(32))
        .ok()
        .filter(|&n| n <= u32::MAX as usize)
        .ok_or(SegmentError::Corrupt("term count out of range"))?;
    let num_docs = usize::try_from(u64_at(40))
        .ok()
        .filter(|&n| n <= u32::MAX as usize)
        .ok_or(SegmentError::Corrupt("document count out of range"))?;
    let num_postings = usize::try_from(u64_at(48))
        .map_err(|_| SegmentError::Corrupt("posting count out of range"))?;
    Ok(Meta {
        config: IndexConfig {
            compress,
            materialize,
            params,
            block_size,
        },
        quantizer,
        num_terms,
        num_docs,
        num_postings,
    })
}

/// Parses `[u32 length][bytes]` strings, expecting exactly `count` of them
/// spanning exactly `bytes`. Pre-allocation is bounded by what the section
/// could physically hold, so a corrupt count cannot balloon memory.
fn decode_strings(bytes: &[u8], count: usize) -> Result<Vec<String>, SegmentError> {
    let mut out = Vec::with_capacity(count.min(bytes.len() / 4 + 1));
    let mut rest = bytes;
    for _ in 0..count {
        if rest.len() < 4 {
            return Err(SegmentError::Corrupt("string record truncated"));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        rest = &rest[4..];
        if rest.len() < len {
            return Err(SegmentError::Corrupt("string record truncated"));
        }
        let s = std::str::from_utf8(&rest[..len])
            .map_err(|_| SegmentError::Corrupt("string record is not UTF-8"))?;
        out.push(s.to_owned());
        rest = &rest[len..];
    }
    if !rest.is_empty() {
        return Err(SegmentError::Corrupt("trailing bytes after string records"));
    }
    Ok(out)
}

/// Parses a section of little-endian 4-byte records whose length must be
/// exactly `count * 4`.
fn decode_u32s(bytes: &[u8], count: usize) -> Result<Vec<u32>, SegmentError> {
    if bytes.len()
        != count
            .checked_mul(4)
            .ok_or(SegmentError::Corrupt("count overflows"))?
    {
        return Err(SegmentError::Corrupt(
            "fixed-width section has the wrong length",
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

fn open_segment_file(path: &Path) -> Result<(InvertedIndex, Option<Vec<u32>>), SegmentError> {
    let r = SegmentReader::open(path)?;
    let meta = decode_meta(&r.read_section(SectionKind::Meta)?)?;
    let vocab = decode_strings(&r.read_section(SectionKind::Terms)?, meta.num_terms)?;
    let names = decode_strings(&r.read_section(SectionKind::DocNames)?, meta.num_docs)?;
    let mut name_builder = StringColumnBuilder::new("name");
    for n in &names {
        name_builder.push(n);
    }
    let doc_names = name_builder.finish();
    let doc_lens: Vec<i32> = decode_u32s(&r.read_section(SectionKind::DocLens)?, meta.num_docs)?
        .into_iter()
        .map(|v| v as i32)
        .collect();
    if doc_lens.iter().any(|&l| l < 0) {
        return Err(SegmentError::Corrupt("negative document length"));
    }
    let doc_freqs = decode_u32s(&r.read_section(SectionKind::DocFreqs)?, meta.num_terms)?;
    let offset_bytes = r.read_section(SectionKind::Offsets)?;
    let expect_len = (meta.num_terms + 1)
        .checked_mul(8)
        .ok_or(SegmentError::Corrupt("term count overflows"))?;
    if offset_bytes.len() != expect_len {
        return Err(SegmentError::Corrupt(
            "offsets section has the wrong length",
        ));
    }
    let mut offsets = Vec::with_capacity(meta.num_terms + 1);
    for c in offset_bytes.chunks_exact(8) {
        let v = u64::from_le_bytes(c.try_into().unwrap());
        let v = usize::try_from(v).map_err(|_| SegmentError::Corrupt("offset out of range"))?;
        if let Some(&prev) = offsets.last() {
            if v < prev {
                return Err(SegmentError::Corrupt("offsets not monotone"));
            }
        } else if v != 0 {
            return Err(SegmentError::Corrupt("offsets must start at zero"));
        }
        offsets.push(v);
    }
    if *offsets.last().expect("num_terms + 1 >= 1") != meta.num_postings {
        return Err(SegmentError::Corrupt(
            "offsets do not cover the posting count",
        ));
    }
    for t in 0..meta.num_terms {
        if (offsets[t + 1] - offsets[t]) as u64 != u64::from(doc_freqs[t]) {
            return Err(SegmentError::Corrupt(
                "document frequency disagrees with offsets",
            ));
        }
    }
    let (docid_codec, tf_codec) = posting_codecs(&meta.config);
    let open_posting_column =
        |kind: SectionKind, name: &str, codec: Codec| -> Result<Column, SegmentError> {
            let col = r.open_column(kind, name)?;
            if col.codec() != codec {
                return Err(SegmentError::Corrupt(
                    "column codec disagrees with configuration",
                ));
            }
            if col.block_size() != meta.config.block_size {
                return Err(SegmentError::Corrupt(
                    "column block size disagrees with configuration",
                ));
            }
            if col.len() != meta.num_postings {
                return Err(SegmentError::Corrupt(
                    "column length disagrees with posting count",
                ));
            }
            Ok(col)
        };
    let docid = open_posting_column(SectionKind::ColDocid, "docid", docid_codec)?;
    let tf = open_posting_column(SectionKind::ColTf, "tf", tf_codec)?;
    let score = match score_codec(meta.config.materialize) {
        Some(codec) => Some(open_posting_column(SectionKind::ColScore, "score", codec)?),
        None => {
            if r.has_section(SectionKind::ColScore) {
                return Err(SegmentError::Corrupt(
                    "unexpected score column for unmaterialized index",
                ));
            }
            None
        }
    };
    let global_ids = if r.has_section(SectionKind::GlobalIds) {
        Some(decode_u32s(
            &r.read_section(SectionKind::GlobalIds)?,
            meta.num_docs,
        )?)
    } else {
        None
    };
    let index = InvertedIndex::from_segment_parts(SegmentParts {
        config: meta.config,
        vocab,
        doc_names,
        doc_lens,
        doc_freqs,
        offsets,
        docid,
        tf,
        score,
        quantizer: meta.quantizer,
    });
    Ok((index, global_ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_corpus::{CollectionConfig, SyntheticCollection};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("x100-ir-segment-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_index_shape() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &IndexConfig::materialized_q8());
        let path = temp_path("shape");
        idx.write_segment(&path).unwrap();
        let back = InvertedIndex::open_segment(&path).unwrap();
        assert_eq!(back.config(), idx.config());
        assert_eq!(back.stats(), idx.stats());
        assert_eq!(back.num_terms(), idx.num_terms());
        assert_eq!(back.num_postings(), idx.num_postings());
        assert_eq!(back.quantizer(), idx.quantizer());
        assert_eq!(back.doc_lens(), idx.doc_lens());
        for t in 0..idx.num_terms() as u32 {
            assert_eq!(back.term_range(t), idx.term_range(t));
            assert_eq!(back.doc_freq(t), idx.doc_freq(t));
        }
        for d in 0..c.docs.len() as u32 {
            assert_eq!(back.doc_name(d), idx.doc_name(d));
        }
        assert_eq!(back.term_id("term3"), idx.term_id("term3"));
        // Posting columns decode bit-identically (lazily, from disk).
        for name in ["docid", "tf", "score"] {
            assert_eq!(
                back.td().column(name).unwrap().read_all(),
                idx.td().column(name).unwrap().read_all(),
                "{name}"
            );
            assert!(back.td().column(name).unwrap().is_disk_backed());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partition_segment_carries_global_ids() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
        let ids: Vec<u32> = (0..c.docs.len() as u32).map(|d| d * 2 + 1).collect();
        let path = temp_path("gids");
        idx.write_partition_segment(&ids, &path).unwrap();
        let (_, back_ids) = InvertedIndex::open_partition_segment(&path).unwrap();
        assert_eq!(back_ids, ids);
        // A plain segment refuses to open as a partition segment.
        let plain = temp_path("plain");
        idx.write_segment(&plain).unwrap();
        assert!(matches!(
            InvertedIndex::open_partition_segment(&plain),
            Err(SegmentError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&plain).unwrap();
    }

    #[test]
    fn uncompressed_and_f32_variants_roundtrip() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        for cfg in [IndexConfig::uncompressed(), IndexConfig::materialized_f32()] {
            let idx = InvertedIndex::build(&c, &cfg);
            let path = temp_path("variant");
            idx.write_segment(&path).unwrap();
            let back = InvertedIndex::open_segment(&path).unwrap();
            assert_eq!(back.config(), idx.config());
            assert_eq!(
                back.td().column("docid").unwrap().read_all(),
                idx.td().column("docid").unwrap().read_all()
            );
            std::fs::remove_file(&path).unwrap();
        }
    }
}
