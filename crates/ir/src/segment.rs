//! Index persistence: writing an [`InvertedIndex`] to a single-file segment
//! and opening it back for serving.
//!
//! The storage layer ([`x100_storage::segment`]) owns the file format —
//! checksummed 64-byte-aligned sections, prefix-sum block directories,
//! open-time verification of every byte. This module owns the *index-level*
//! encoding on top of it: which sections exist, how the configuration,
//! vocabulary, document table and posting offsets serialize, and the
//! cross-section consistency checks that make a reopened index safe to
//! serve.
//!
//! Since format version 2 a segment open is **O(block directory), not
//! O(collection)**: the vocabulary, document names, document lengths,
//! document frequencies and term offsets are all stored as disk-backed
//! columns whose blocks are `pread` through the buffer pool on first
//! touch, exactly like posting blocks. The only metadata materialized at
//! open time are two small directories — the per-page fence keys of the
//! sorted vocabulary ([`SectionKind::TermsFences`]) and the first-docid
//! table of the name pages ([`SectionKind::NamesDir`]) — whose size is
//! reported in [`SegmentOpenStats`].
//!
//! A reopened index is **bit-identical** to the one written: posting and
//! score blocks come back byte-for-byte, the quantizer and the collection
//! statistics are restored from their exact bits, and the paged term
//! lookup answers exactly like the materialized binary search it replaced.
//!
//! Persistence is crash-safe: the segment streams into a sibling temp
//! file, is fsynced by [`SegmentWriter::finish`], and only then atomically
//! renamed over the target path (with the parent directory fsynced), so an
//! interrupted persist can never leave a plausible-looking partial segment
//! at the target path.

use std::borrow::Cow;
use std::path::{Path, PathBuf};

use x100_compress::Codec;
use x100_storage::{
    Column, ColumnBuilder, SectionKind, SegmentError, SegmentReader, SegmentWriter,
};

use crate::bm25::{CollectionStats, Quantizer};
use crate::columns::{posting_codecs, BLOCK_MAX_SLOTS};
use crate::index::{IndexConfig, InvertedIndex, Materialize};
use crate::paged::{
    build_name_pages, build_term_pages, col_value, NamesDir, PagedMetadata, TermFences, PAGE_VALUES,
};

/// Fixed size of the serialized [`SectionKind::Meta`] payload.
const META_LEN: usize = 64;

/// What a segment open had to materialize, versus what a version-1 open
/// would have held resident for the same metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentOpenStats {
    /// Bytes of metadata pinned in memory by the open: the vocabulary
    /// fence keys and the document-name page directory.
    pub resident_meta_bytes: usize,
    /// Bytes of block-directory entries (offset + length per block) across
    /// every disk-backed column of the segment.
    pub directory_bytes: usize,
    /// Bytes the old fully-materialized open would have held resident for
    /// the same metadata: owned vocabulary and name strings plus dense
    /// doc-len / doc-freq / offset arrays.
    pub full_materialized_bytes: usize,
}

/// Everything [`InvertedIndex::from_segment_parts`] needs to assemble a
/// served index, decoded and cross-validated from an open segment.
pub(crate) struct SegmentParts {
    pub config: IndexConfig,
    pub stats: CollectionStats,
    pub num_terms: usize,
    pub paged: PagedMetadata,
    pub docid: Column,
    pub tf: Column,
    pub score: Option<Column>,
    pub quantizer: Option<Quantizer>,
    pub block_max: Option<Column>,
}

impl InvertedIndex {
    /// Writes the index to a segment file at `path`, streaming compressed
    /// columns block-at-a-time through a temp file that is atomically
    /// renamed into place. Returns the segment size in bytes.
    pub fn write_segment(&self, path: impl AsRef<Path>) -> Result<u64, SegmentError> {
        write_segment_file(self, None, path.as_ref())
    }

    /// Writes a per-partition segment: like [`Self::write_segment`] plus a
    /// [`SectionKind::GlobalIds`] section mapping each local docid to its
    /// collection-wide id, so a cluster can be reassembled from segments.
    pub fn write_partition_segment(
        &self,
        global_ids: &[u32],
        path: impl AsRef<Path>,
    ) -> Result<u64, SegmentError> {
        assert_eq!(
            global_ids.len(),
            self.num_docs(),
            "one global id per document"
        );
        write_segment_file(self, Some(global_ids), path.as_ref())
    }

    /// Opens a segment written by [`Self::write_segment`]. All columns —
    /// postings, scores, and the paged metadata — come back disk-backed:
    /// blocks are `pread` on first touch, cached, dropped on buffer-pool
    /// eviction, and re-read on the next access.
    pub fn open_segment(path: impl AsRef<Path>) -> Result<Self, SegmentError> {
        Ok(open_segment_file(path.as_ref())?.0)
    }

    /// Like [`Self::open_segment`], also reporting how much metadata the
    /// open materialized ([`SegmentOpenStats`]).
    pub fn open_segment_with_stats(
        path: impl AsRef<Path>,
    ) -> Result<(Self, SegmentOpenStats), SegmentError> {
        let (index, _, stats) = open_segment_file(path.as_ref())?;
        Ok((index, stats))
    }

    /// Opens a per-partition segment, returning the index together with its
    /// local-to-global docid map.
    pub fn open_partition_segment(
        path: impl AsRef<Path>,
    ) -> Result<(Self, Vec<u32>), SegmentError> {
        let (index, global_ids, _) = open_segment_file(path.as_ref())?;
        let global_ids = global_ids.ok_or(SegmentError::Corrupt(
            "partition segment lacks a global-ids section",
        ))?;
        Ok((index, global_ids))
    }
}

/// The score column's codec for each materialization variant.
fn score_codec(materialize: Materialize) -> Option<Codec> {
    match materialize {
        Materialize::None => None,
        Materialize::F32 => Some(Codec::Raw),
        Materialize::Quantized8 => Some(Codec::Pfor { width: 8 }),
    }
}

fn encode_meta(index: &InvertedIndex) -> Vec<u8> {
    let cfg = index.config();
    let (lower, upper, q) = index
        .quantizer()
        .map(|qz| (qz.lower, qz.upper, qz.q))
        .unwrap_or((0.0, 0.0, 0));
    let mut meta = Vec::with_capacity(META_LEN);
    meta.push(u8::from(cfg.compress));
    meta.push(match cfg.materialize {
        Materialize::None => 0,
        Materialize::F32 => 1,
        Materialize::Quantized8 => 2,
    });
    meta.push(u8::from(index.quantizer().is_some()));
    meta.push(0);
    meta.extend_from_slice(&cfg.params.k1.to_bits().to_le_bytes());
    meta.extend_from_slice(&cfg.params.b.to_bits().to_le_bytes());
    meta.extend_from_slice(&lower.to_bits().to_le_bytes());
    meta.extend_from_slice(&upper.to_bits().to_le_bytes());
    meta.extend_from_slice(&q.to_le_bytes());
    meta.extend_from_slice(&(cfg.block_size as u64).to_le_bytes());
    meta.extend_from_slice(&(index.num_terms() as u64).to_le_bytes());
    meta.extend_from_slice(&(index.num_docs() as u64).to_le_bytes());
    meta.extend_from_slice(&(index.num_postings() as u64).to_le_bytes());
    // The exact average-doc-length bits, so a reopened index serves the
    // same statistics without folding over the document lengths.
    meta.extend_from_slice(&index.stats().avg_doc_len.to_bits().to_le_bytes());
    meta.extend_from_slice(&[0u8; 4]);
    debug_assert_eq!(meta.len(), META_LEN);
    meta
}

/// A `u32` column of dense per-term / per-doc metadata, paged at the same
/// granularity as the record pages.
fn metadata_column(name: &str, values: impl Iterator<Item = u32>) -> Column {
    let mut b = ColumnBuilder::with_block_size(name, Codec::Raw, PAGE_VALUES);
    for v in values {
        b.push(v);
    }
    b.finish()
}

/// The sibling temp path a segment streams into before the atomic rename.
fn temp_sibling(path: &Path) -> PathBuf {
    let file = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!("{file}.tmp.{}", std::process::id()))
}

/// Fsyncs `path`'s parent directory so the rename itself is durable.
fn sync_parent_dir(path: &Path) -> Result<(), SegmentError> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

fn write_segment_file(
    index: &InvertedIndex,
    global_ids: Option<&[u32]>,
    path: &Path,
) -> Result<u64, SegmentError> {
    let num_docs = index.num_docs();
    let num_terms = index.num_terms();
    let num_postings = index.num_postings();
    if num_postings > u32::MAX as usize {
        return Err(SegmentError::TooLarge(
            "posting count exceeds the u32 offset column",
        ));
    }
    // Page the variable-length metadata: the vocabulary sorted
    // lexicographically with its term id embedded per record, the names in
    // docid order.
    let vocab = index.term_strings();
    let mut order: Vec<u32> = (0..num_terms as u32).collect();
    order.sort_unstable_by(|&a, &b| vocab[a as usize].cmp(&vocab[b as usize]));
    let (terms_col, fences) =
        build_term_pages(order.iter().map(|&id| (vocab[id as usize].as_str(), id)))?;
    let (names_col, names_dir) = build_name_pages((0..num_docs).map(|d| {
        Cow::Owned(
            index
                .doc_name(d as u32)
                .expect("every docid below num_docs has a name"),
        )
    }))?;
    let lens_col = metadata_column("doc_lens", index.doc_lens().iter().map(|&l| l as u32));
    let freqs_col = metadata_column(
        "doc_freqs",
        (0..num_terms).map(|t| index.doc_freq(t as u32)),
    );
    let offsets_col = metadata_column(
        "offsets",
        (0..num_terms)
            .map(|t| index.term_range(t as u32).start as u32)
            .chain(std::iter::once(num_postings as u32)),
    );
    let tmp = temp_sibling(path);
    let written = (|| {
        let mut w = SegmentWriter::create(&tmp)?;
        w.write_section(SectionKind::Meta, &encode_meta(index))?;
        w.write_section(SectionKind::TermsFences, &fences.encode())?;
        w.write_column_section(SectionKind::Terms, &terms_col)?;
        w.write_section(SectionKind::NamesDir, &names_dir.encode())?;
        w.write_column_section(SectionKind::DocNames, &names_col)?;
        w.write_column_section(SectionKind::DocLens, &lens_col)?;
        w.write_column_section(SectionKind::DocFreqs, &freqs_col)?;
        w.write_column_section(SectionKind::Offsets, &offsets_col)?;
        let column = |name: &str| {
            index
                .td()
                .column(name)
                .expect("index TD table always has its posting columns")
        };
        w.write_column_section(SectionKind::ColDocid, column("docid"))?;
        w.write_column_section(SectionKind::ColTf, column("tf"))?;
        if index.has_materialized_scores() {
            w.write_column_section(SectionKind::ColScore, column("score"))?;
        }
        if let Some(bm) = index.block_max() {
            w.write_column_section(SectionKind::BlockMax, bm)?;
        }
        if let Some(ids) = global_ids {
            let mut bytes = Vec::with_capacity(ids.len() * 4);
            for &g in ids {
                bytes.extend_from_slice(&g.to_le_bytes());
            }
            w.write_section(SectionKind::GlobalIds, &bytes)?;
        }
        w.finish()
    })();
    match written {
        Ok(bytes) => {
            std::fs::rename(&tmp, path)?;
            sync_parent_dir(path)?;
            Ok(bytes)
        }
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Decoded [`SectionKind::Meta`] payload.
struct Meta {
    config: IndexConfig,
    quantizer: Option<Quantizer>,
    num_terms: usize,
    num_docs: usize,
    num_postings: usize,
    avg_doc_len: f32,
}

fn decode_meta(bytes: &[u8]) -> Result<Meta, SegmentError> {
    if bytes.len() != META_LEN {
        return Err(SegmentError::Corrupt("meta section has the wrong length"));
    }
    let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
    let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
    let compress = match bytes[0] {
        0 => false,
        1 => true,
        _ => return Err(SegmentError::Corrupt("bad compression flag")),
    };
    let materialize = match bytes[1] {
        0 => Materialize::None,
        1 => Materialize::F32,
        2 => Materialize::Quantized8,
        _ => return Err(SegmentError::Corrupt("bad materialization tag")),
    };
    let has_quantizer = match bytes[2] {
        0 => false,
        1 => true,
        _ => return Err(SegmentError::Corrupt("bad quantizer flag")),
    };
    if has_quantizer != (materialize == Materialize::Quantized8) {
        return Err(SegmentError::Corrupt(
            "quantizer flag disagrees with materialization",
        ));
    }
    if bytes[3] != 0 {
        return Err(SegmentError::Corrupt("nonzero reserved meta field"));
    }
    let params = crate::bm25::Bm25Params {
        k1: f32::from_bits(u32_at(4)),
        b: f32::from_bits(u32_at(8)),
    };
    let quantizer = has_quantizer.then(|| Quantizer {
        lower: f32::from_bits(u32_at(12)),
        upper: f32::from_bits(u32_at(16)),
        q: u32_at(20),
    });
    let block_size = usize::try_from(u64_at(24))
        .ok()
        .filter(|&b| b > 0 && b.is_multiple_of(x100_compress::ENTRY_POINT_STRIDE))
        .ok_or(SegmentError::Corrupt("bad index block size"))?;
    let num_terms = usize::try_from(u64_at(32))
        .ok()
        .filter(|&n| n <= u32::MAX as usize)
        .ok_or(SegmentError::Corrupt("term count out of range"))?;
    let num_docs = usize::try_from(u64_at(40))
        .ok()
        .filter(|&n| n <= u32::MAX as usize)
        .ok_or(SegmentError::Corrupt("document count out of range"))?;
    let num_postings = usize::try_from(u64_at(48))
        .ok()
        .filter(|&n| n <= u32::MAX as usize)
        .ok_or(SegmentError::Corrupt("posting count out of range"))?;
    let avg_doc_len = f32::from_bits(u32_at(56));
    if bytes[60..64] != [0u8; 4] {
        return Err(SegmentError::Corrupt("nonzero reserved meta field"));
    }
    Ok(Meta {
        config: IndexConfig {
            compress,
            materialize,
            params,
            block_size,
        },
        quantizer,
        num_terms,
        num_docs,
        num_postings,
        avg_doc_len,
    })
}

/// Parses a section of little-endian 4-byte records whose length must be
/// exactly `count * 4`.
fn decode_u32s(bytes: &[u8], count: usize) -> Result<Vec<u32>, SegmentError> {
    if bytes.len()
        != count
            .checked_mul(4)
            .ok_or(SegmentError::Corrupt("count overflows"))?
    {
        return Err(SegmentError::Corrupt(
            "fixed-width section has the wrong length",
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

fn open_segment_file(
    path: &Path,
) -> Result<(InvertedIndex, Option<Vec<u32>>, SegmentOpenStats), SegmentError> {
    let r = SegmentReader::open(path)?;
    let meta = decode_meta(&r.read_section(SectionKind::Meta)?)?;
    // The five metadata columns are raw u32 columns paged at PAGE_VALUES,
    // so the buffer pool serves them like any posting column.
    let metadata_column =
        |kind: SectionKind, name: &str, len: usize| -> Result<Column, SegmentError> {
            let col = r.open_column(kind, name)?;
            if col.codec() != Codec::Raw {
                return Err(SegmentError::Corrupt("metadata column must be raw"));
            }
            if col.block_size() != PAGE_VALUES {
                return Err(SegmentError::Corrupt(
                    "metadata column has the wrong page size",
                ));
            }
            if col.len() != len {
                return Err(SegmentError::Corrupt(
                    "metadata column length disagrees with the declared count",
                ));
            }
            Ok(col)
        };
    let record_column = |kind: SectionKind, name: &str| -> Result<Column, SegmentError> {
        let col = r.open_column(kind, name)?;
        if col.codec() != Codec::Raw {
            return Err(SegmentError::Corrupt("metadata column must be raw"));
        }
        if col.block_size() != PAGE_VALUES || !col.len().is_multiple_of(PAGE_VALUES) {
            return Err(SegmentError::Corrupt("record pages are ragged"));
        }
        Ok(col)
    };
    let terms = record_column(SectionKind::Terms, "terms")?;
    let fences = TermFences::decode(
        &r.read_section(SectionKind::TermsFences)?,
        meta.num_terms,
        terms.block_count(),
    )?;
    let names = record_column(SectionKind::DocNames, "doc_names")?;
    let names_dir = NamesDir::decode(
        &r.read_section(SectionKind::NamesDir)?,
        meta.num_docs,
        names.block_count(),
    )?;
    let doc_lens = metadata_column(SectionKind::DocLens, "doc_lens", meta.num_docs)?;
    let doc_freqs = metadata_column(SectionKind::DocFreqs, "doc_freqs", meta.num_terms)?;
    let offsets = metadata_column(SectionKind::Offsets, "offsets", meta.num_terms + 1)?;
    if col_value(&offsets, 0) != 0 {
        return Err(SegmentError::Corrupt("offsets must start at zero"));
    }
    if col_value(&offsets, meta.num_terms) as usize != meta.num_postings {
        return Err(SegmentError::Corrupt(
            "offsets do not cover the posting count",
        ));
    }
    let (docid_codec, tf_codec) = posting_codecs(&meta.config);
    let open_posting_column =
        |kind: SectionKind, name: &str, codec: Codec| -> Result<Column, SegmentError> {
            let col = r.open_column(kind, name)?;
            if col.codec() != codec {
                return Err(SegmentError::Corrupt(
                    "column codec disagrees with configuration",
                ));
            }
            if col.block_size() != meta.config.block_size {
                return Err(SegmentError::Corrupt(
                    "column block size disagrees with configuration",
                ));
            }
            if col.len() != meta.num_postings {
                return Err(SegmentError::Corrupt(
                    "column length disagrees with posting count",
                ));
            }
            Ok(col)
        };
    let docid = open_posting_column(SectionKind::ColDocid, "docid", docid_codec)?;
    let tf = open_posting_column(SectionKind::ColTf, "tf", tf_codec)?;
    let score = match score_codec(meta.config.materialize) {
        Some(codec) => Some(open_posting_column(SectionKind::ColScore, "score", codec)?),
        None => {
            if r.has_section(SectionKind::ColScore) {
                return Err(SegmentError::Corrupt(
                    "unexpected score column for unmaterialized index",
                ));
            }
            None
        }
    };
    // The block-max section is optional: segments written before it existed
    // still open, the query side just never prunes. When present, it must
    // be exactly one triplet per 128-value posting stride.
    let block_max = if r.has_section(SectionKind::BlockMax) {
        let entries = meta
            .num_postings
            .div_ceil(x100_compress::ENTRY_POINT_STRIDE)
            * BLOCK_MAX_SLOTS;
        Some(metadata_column(SectionKind::BlockMax, "blockmax", entries)?)
    } else {
        None
    };
    let global_ids = if r.has_section(SectionKind::GlobalIds) {
        Some(decode_u32s(
            &r.read_section(SectionKind::GlobalIds)?,
            meta.num_docs,
        )?)
    } else {
        None
    };
    let paged = PagedMetadata {
        terms,
        fences,
        names,
        names_dir,
        doc_lens,
        doc_freqs,
        offsets,
        num_terms: meta.num_terms,
        num_postings: meta.num_postings,
        lens_cache: std::sync::OnceLock::new(),
    };
    let directory_bytes = [
        &paged.terms,
        &paged.names,
        &paged.doc_lens,
        &paged.doc_freqs,
        &paged.offsets,
        &docid,
        &tf,
    ]
    .into_iter()
    .chain(score.as_ref())
    .chain(block_max.as_ref())
    .map(|c| c.block_count() * std::mem::size_of::<(u64, u32)>())
    .sum();
    let open_stats = SegmentOpenStats {
        resident_meta_bytes: paged.resident_meta_bytes(),
        directory_bytes,
        full_materialized_bytes: paged.full_materialized_bytes(),
    };
    let index = InvertedIndex::from_segment_parts(SegmentParts {
        config: meta.config,
        stats: CollectionStats {
            num_docs: meta.num_docs as u32,
            avg_doc_len: meta.avg_doc_len,
        },
        num_terms: meta.num_terms,
        paged,
        docid,
        tf,
        score,
        quantizer: meta.quantizer,
        block_max,
    });
    // Debug-mode soundness check: re-derive the per-stride bounds from the
    // posting columns and require the stored metadata to dominate them. An
    // understated bound cannot be caught by checksums (the file is
    // internally consistent) but would let pruning drop true top-k hits —
    // so debug opens reject it with a typed error. Release opens skip the
    // O(postings) scan.
    if cfg!(debug_assertions) {
        index.validate_block_max().map_err(SegmentError::Corrupt)?;
    }
    Ok((index, global_ids, open_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_corpus::{CollectionConfig, SyntheticCollection};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("x100-ir-segment-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_index_shape() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &IndexConfig::materialized_q8());
        let path = temp_path("shape");
        idx.write_segment(&path).unwrap();
        let back = InvertedIndex::open_segment(&path).unwrap();
        assert_eq!(back.config(), idx.config());
        assert_eq!(back.stats(), idx.stats());
        assert_eq!(back.num_terms(), idx.num_terms());
        assert_eq!(back.num_postings(), idx.num_postings());
        assert_eq!(back.quantizer(), idx.quantizer());
        assert_eq!(back.doc_lens(), idx.doc_lens());
        for t in 0..idx.num_terms() as u32 {
            assert_eq!(back.term_range(t), idx.term_range(t));
            assert_eq!(back.doc_freq(t), idx.doc_freq(t));
        }
        for d in 0..c.docs.len() as u32 {
            assert_eq!(back.doc_name(d), idx.doc_name(d));
        }
        assert_eq!(back.term_id("term3"), idx.term_id("term3"));
        // Block-max metadata roundtrips bit-identically and disk-backed.
        assert_eq!(
            back.block_max().unwrap().read_all(),
            idx.block_max().unwrap().read_all()
        );
        assert!(back.block_max().unwrap().is_disk_backed());
        // Posting columns decode bit-identically (lazily, from disk).
        for name in ["docid", "tf", "score"] {
            assert_eq!(
                back.td().column(name).unwrap().read_all(),
                idx.td().column(name).unwrap().read_all(),
                "{name}"
            );
            assert!(back.td().column(name).unwrap().is_disk_backed());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partition_segment_carries_global_ids() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
        let ids: Vec<u32> = (0..c.docs.len() as u32).map(|d| d * 2 + 1).collect();
        let path = temp_path("gids");
        idx.write_partition_segment(&ids, &path).unwrap();
        let (_, back_ids) = InvertedIndex::open_partition_segment(&path).unwrap();
        assert_eq!(back_ids, ids);
        // A plain segment refuses to open as a partition segment.
        let plain = temp_path("plain");
        idx.write_segment(&plain).unwrap();
        assert!(matches!(
            InvertedIndex::open_partition_segment(&plain),
            Err(SegmentError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&plain).unwrap();
    }

    #[test]
    fn uncompressed_and_f32_variants_roundtrip() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        for cfg in [IndexConfig::uncompressed(), IndexConfig::materialized_f32()] {
            let idx = InvertedIndex::build(&c, &cfg);
            let path = temp_path("variant");
            idx.write_segment(&path).unwrap();
            let back = InvertedIndex::open_segment(&path).unwrap();
            assert_eq!(back.config(), idx.config());
            assert_eq!(
                back.td().column("docid").unwrap().read_all(),
                idx.td().column("docid").unwrap().read_all()
            );
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn open_stats_report_a_small_resident_footprint() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
        let path = temp_path("stats");
        idx.write_segment(&path).unwrap();
        let (back, stats) = InvertedIndex::open_segment_with_stats(&path).unwrap();
        assert_eq!(back.num_terms(), idx.num_terms());
        assert!(stats.directory_bytes > 0);
        assert!(stats.resident_meta_bytes > 0);
        assert!(
            stats.resident_meta_bytes < stats.full_materialized_bytes,
            "{stats:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interrupted_persist_leaves_no_segment_behind() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
        let dir = temp_path("atomic-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("seg.x1sg");
        // A failed write (unwritable target directory for the temp file)
        // must not create the target path.
        let bad = dir.join("missing-subdir").join("seg.x1sg");
        assert!(matches!(idx.write_segment(&bad), Err(SegmentError::Io(_))));
        assert!(!bad.exists());
        // A successful write leaves exactly the target, no temp files.
        idx.write_segment(&target).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        InvertedIndex::open_segment(&target).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
