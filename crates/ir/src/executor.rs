//! Shareable query execution for concurrent serving.
//!
//! [`crate::QueryEngine`] borrows its index, which is the right shape for
//! single-threaded experiments but awkward to hand to a worker pool. A
//! [`QueryExecutor`] owns `Arc` handles to the index and the buffer
//! manager instead: cloning one is two reference-count bumps, every query
//! method takes `&self`, and the type is statically `Send + Sync` — so a
//! serving layer clones one executor per worker thread and all workers
//! share a single RAM-resident index and one (lock-striped) buffer pool.
//!
//! The execution vector size is fixed at construction (builder-style
//! [`QueryExecutor::with_vector_size`]); there is deliberately no `&mut`
//! setter, so an executor observed by many threads can never change
//! configuration under them.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use x100_corpus::{CollectionConfig, SyntheticCollection};
//! use x100_ir::{IndexConfig, InvertedIndex, QueryExecutor, SearchStrategy};
//!
//! let collection = SyntheticCollection::generate(&CollectionConfig::tiny());
//! let index = Arc::new(InvertedIndex::build(&collection, &IndexConfig::compressed()));
//! let executor = QueryExecutor::new(index);
//! let query = &collection.eval_queries[0];
//!
//! // Workers clone the executor; the index and buffer pool stay shared.
//! let handles: Vec<_> = (0..2)
//!     .map(|_| {
//!         let exec = executor.clone();
//!         let terms = query.terms.clone();
//!         std::thread::spawn(move || exec.search(&terms, SearchStrategy::Bm25, 10).unwrap())
//!     })
//!     .collect();
//! let mut responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
//! assert_eq!(responses[0].results, responses[1].results);
//! # let _ = responses.pop();
//! ```

use std::sync::Arc;

use x100_exec::ExecError;
use x100_storage::{BufferManager, BufferMode, DiskModel};
use x100_vector::VectorSize;

use crate::engine::{QueryEngine, SearchResponse, SearchResult, SearchStrategy};
use crate::index::InvertedIndex;

/// A cheaply clonable, thread-shareable query executor: `Arc`-owned index
/// and buffer pool plus an immutable execution configuration.
///
/// Each call to a query method builds its per-query operator state (plan,
/// scan cursors, decode scratch) on the executor's stack via a short-lived
/// [`QueryEngine`], so concurrent queries on clones never share mutable
/// state — only the index (read-only) and the lock-striped buffer manager.
#[derive(Clone)]
pub struct QueryExecutor {
    index: Arc<InvertedIndex>,
    buffers: Arc<BufferManager>,
    vector_size: usize,
}

// Compile-time guarantees: an executor can be handed to worker threads
// (`Send`), shared between them (`Sync`), and duplicated per worker
// (`Clone`). If a future field breaks any of these, this fails to build.
const _: () = {
    const fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
    assert_send_sync_clone::<QueryExecutor>();
};

impl QueryExecutor {
    /// Executor with hot (unbounded, warm-once) buffering and the default
    /// RAID disk model.
    pub fn new(index: Arc<InvertedIndex>) -> Self {
        Self::with_buffering(index, DiskModel::raid12(), BufferMode::Hot, 0)
    }

    /// Executor with an explicit disk model and buffer mode.
    pub fn with_buffering(
        index: Arc<InvertedIndex>,
        disk: DiskModel,
        mode: BufferMode,
        capacity_bytes: usize,
    ) -> Self {
        Self::with_buffer_manager(
            index,
            Arc::new(BufferManager::with_mode(disk, mode, capacity_bytes)),
        )
    }

    /// Executor over an externally owned buffer manager — the serving path
    /// keeps one persistent pool per node and clones executors over it.
    pub fn with_buffer_manager(index: Arc<InvertedIndex>, buffers: Arc<BufferManager>) -> Self {
        QueryExecutor {
            index,
            buffers,
            vector_size: VectorSize::DEFAULT.get(),
        }
    }

    /// Builder-style vector-size override, fixed for the executor's
    /// lifetime (and inherited by its clones).
    #[must_use]
    pub fn with_vector_size(mut self, size: impl Into<VectorSize>) -> Self {
        self.vector_size = size.into().get();
        self
    }

    /// The shared index.
    pub fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// The shared buffer manager (for warming, evicting, stats).
    pub fn buffers(&self) -> &Arc<BufferManager> {
        &self.buffers
    }

    /// The configured vector size.
    pub fn vector_size(&self) -> usize {
        self.vector_size
    }

    /// A borrowed [`QueryEngine`] view over the shared index and pool —
    /// the per-query execution scratch. Construction is a few pointer
    /// copies; plans and decode buffers are built per query inside the
    /// engine's methods.
    pub fn engine(&self) -> QueryEngine<'_> {
        QueryEngine::with_buffer_manager(&self.index, self.buffers.clone())
            .with_vector_size(self.vector_size)
    }

    /// Runs one query: term ids in, ranked top-`n` out. See
    /// [`QueryEngine::search`].
    pub fn search(
        &self,
        term_ids: &[u32],
        strategy: SearchStrategy,
        n: usize,
    ) -> Result<SearchResponse, ExecError> {
        self.engine().search(term_ids, strategy, n)
    }

    /// Convenience: search by term strings, returning just the hits. See
    /// [`QueryEngine::search_terms`].
    pub fn search_terms(
        &self,
        terms: &[&str],
        strategy: SearchStrategy,
        n: usize,
    ) -> Vec<SearchResult> {
        self.engine().search_terms(terms, strategy, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use x100_corpus::{CollectionConfig, SyntheticCollection};

    fn setup() -> (SyntheticCollection, QueryExecutor) {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = Arc::new(InvertedIndex::build(&c, &IndexConfig::compressed()));
        let exec = QueryExecutor::new(idx);
        (c, exec)
    }

    #[test]
    fn executor_matches_borrowing_engine() {
        let (c, exec) = setup();
        let engine = QueryEngine::new(exec.index());
        for q in c.eval_queries.iter().take(3) {
            let a = exec.search(&q.terms, SearchStrategy::Bm25, 10).unwrap();
            let b = engine.search(&q.terms, SearchStrategy::Bm25, 10).unwrap();
            assert_eq!(a.results, b.results);
        }
    }

    #[test]
    fn clones_share_index_and_pool() {
        let (_, exec) = setup();
        let clone = exec.clone();
        assert!(Arc::ptr_eq(exec.index(), clone.index()));
        assert!(Arc::ptr_eq(exec.buffers(), clone.buffers()));
        assert_eq!(exec.vector_size(), clone.vector_size());
    }

    #[test]
    fn vector_size_is_construction_time_and_inherited() {
        let (c, exec) = setup();
        let tuned = exec.clone().with_vector_size(64usize);
        assert_eq!(tuned.vector_size(), 64);
        assert_eq!(tuned.clone().vector_size(), 64);
        let q = &c.eval_queries[0];
        assert_eq!(
            exec.search(&q.terms, SearchStrategy::Bm25, 10)
                .unwrap()
                .results,
            tuned
                .search(&q.terms, SearchStrategy::Bm25, 10)
                .unwrap()
                .results,
        );
    }

    #[test]
    fn concurrent_clones_agree_with_sequential() {
        let (c, exec) = setup();
        let queries: Vec<Vec<u32>> = c.eval_queries.iter().map(|q| q.terms.clone()).collect();
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| {
                exec.search(q, SearchStrategy::Bm25TwoPass, 10)
                    .unwrap()
                    .results
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let exec = exec.clone();
                let queries = &queries;
                let sequential = &sequential;
                s.spawn(move || {
                    for (q, expect) in queries.iter().zip(sequential) {
                        let got = exec.search(q, SearchStrategy::Bm25TwoPass, 10).unwrap();
                        assert_eq!(&got.results, expect);
                    }
                });
            }
        });
    }
}
