//! Shareable query execution for concurrent serving.
//!
//! [`crate::QueryEngine`] borrows its index, which is the right shape for
//! single-threaded experiments but awkward to hand to a worker pool. A
//! [`QueryExecutor`] owns `Arc` handles to the index and the buffer
//! manager instead: cloning one is two reference-count bumps plus an
//! empty scratch arena, every query method takes `&self`, and the type is
//! statically `Send + Sync` — so a serving layer clones one executor per
//! worker thread and all workers share a single RAM-resident index and
//! one (lock-striped) buffer pool, while each keeps a private
//! [`crate::QueryScratch`] arena that makes its steady-state queries
//! allocation-free.
//!
//! The execution vector size is fixed at construction (builder-style
//! [`QueryExecutor::with_vector_size`]); there is deliberately no `&mut`
//! setter, so an executor observed by many threads can never change
//! configuration under them.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use x100_corpus::{CollectionConfig, SyntheticCollection};
//! use x100_ir::{IndexConfig, InvertedIndex, QueryExecutor, SearchStrategy};
//!
//! let collection = SyntheticCollection::generate(&CollectionConfig::tiny());
//! let index = Arc::new(InvertedIndex::build(&collection, &IndexConfig::compressed()));
//! let executor = QueryExecutor::new(index);
//! let query = &collection.eval_queries[0];
//!
//! // Workers clone the executor; the index and buffer pool stay shared.
//! let handles: Vec<_> = (0..2)
//!     .map(|_| {
//!         let exec = executor.clone();
//!         let terms = query.terms.clone();
//!         std::thread::spawn(move || exec.search(&terms, SearchStrategy::Bm25, 10).unwrap())
//!     })
//!     .collect();
//! let mut responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
//! assert_eq!(responses[0].results, responses[1].results);
//! # let _ = responses.pop();
//! ```

use std::sync::{Arc, Mutex};

use x100_exec::ExecError;
use x100_storage::{BufferManager, BufferMode, DiskModel};
use x100_vector::VectorSize;

use crate::engine::{HitsResponse, QueryEngine, SearchResponse, SearchResult, SearchStrategy};
use crate::hot::QueryScratch;
use crate::index::InvertedIndex;

/// A cheaply clonable, thread-shareable query executor: `Arc`-owned index
/// and buffer pool, an immutable execution configuration, and an owned
/// [`QueryScratch`] arena reused across this executor's queries.
///
/// Query methods run the fused allocation-free path ([`crate::hot`]) over
/// the scratch arena: buffers are cleared — not freed — between queries,
/// so a warmed executor answers queries without touching the allocator.
/// The arena sits behind a mutex so `&self` query methods stay safe to
/// share, but the intended shape is one *clone* per worker (cloning gives
/// each worker its own arena; the index and the lock-striped buffer pool
/// stay shared), keeping that mutex uncontended.
pub struct QueryExecutor {
    index: Arc<InvertedIndex>,
    buffers: Arc<BufferManager>,
    vector_size: usize,
    scratch: Mutex<QueryScratch>,
}

impl Clone for QueryExecutor {
    /// Two reference-count bumps plus a fresh (empty) scratch arena — the
    /// arena is per-executor working state, never shared by clones.
    fn clone(&self) -> Self {
        QueryExecutor {
            index: Arc::clone(&self.index),
            buffers: Arc::clone(&self.buffers),
            vector_size: self.vector_size,
            scratch: Mutex::new(QueryScratch::new()),
        }
    }
}

// Compile-time guarantees: an executor can be handed to worker threads
// (`Send`), shared between them (`Sync`), and duplicated per worker
// (`Clone`). If a future field breaks any of these, this fails to build.
const _: () = {
    const fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
    assert_send_sync_clone::<QueryExecutor>();
};

impl QueryExecutor {
    /// Executor with hot (unbounded, warm-once) buffering and the default
    /// RAID disk model.
    pub fn new(index: Arc<InvertedIndex>) -> Self {
        Self::with_buffering(index, DiskModel::raid12(), BufferMode::Hot, 0)
    }

    /// Executor with an explicit disk model and buffer mode.
    pub fn with_buffering(
        index: Arc<InvertedIndex>,
        disk: DiskModel,
        mode: BufferMode,
        capacity_bytes: usize,
    ) -> Self {
        Self::with_buffer_manager(
            index,
            Arc::new(BufferManager::with_mode(disk, mode, capacity_bytes)),
        )
    }

    /// Executor over an externally owned buffer manager — the serving path
    /// keeps one persistent pool per node and clones executors over it.
    pub fn with_buffer_manager(index: Arc<InvertedIndex>, buffers: Arc<BufferManager>) -> Self {
        QueryExecutor {
            index,
            buffers,
            vector_size: VectorSize::DEFAULT.get(),
            scratch: Mutex::new(QueryScratch::new()),
        }
    }

    /// Builder-style vector-size override, fixed for the executor's
    /// lifetime (and inherited by its clones).
    #[must_use]
    pub fn with_vector_size(mut self, size: impl Into<VectorSize>) -> Self {
        self.vector_size = size.into().get();
        self
    }

    /// The shared index.
    pub fn index(&self) -> &Arc<InvertedIndex> {
        &self.index
    }

    /// The shared buffer manager (for warming, evicting, stats).
    pub fn buffers(&self) -> &Arc<BufferManager> {
        &self.buffers
    }

    /// The configured vector size.
    pub fn vector_size(&self) -> usize {
        self.vector_size
    }

    /// A borrowed [`QueryEngine`] view over the shared index and pool —
    /// the per-query execution scratch. Construction is a few pointer
    /// copies; plans and decode buffers are built per query inside the
    /// engine's methods.
    pub fn engine(&self) -> QueryEngine<'_> {
        QueryEngine::with_buffer_manager(&self.index, self.buffers.clone())
            .with_vector_size(self.vector_size)
    }

    /// Runs one query: term ids in, ranked top-`n` out. Same response
    /// shape and bit-identical results as [`QueryEngine::search`], served
    /// by the fused scratch-arena path (the relational engine remains the
    /// differential oracle).
    pub fn search(
        &self,
        term_ids: &[u32],
        strategy: SearchStrategy,
        n: usize,
    ) -> Result<SearchResponse, ExecError> {
        let mut scratch = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        self.engine()
            .search_with_scratch(term_ids, strategy, n, &mut scratch)
    }

    /// The allocation-free query API for serving workers: fills `out`
    /// (cleared first) with up to `n` `(docid, score)` hits, best first,
    /// reusing this executor's scratch arena. After a warmup query has
    /// grown the arena, a call performs zero heap allocations. See
    /// [`QueryEngine::search_hits_into`].
    pub fn search_hits_into(
        &self,
        term_ids: &[u32],
        strategy: SearchStrategy,
        n: usize,
        out: &mut Vec<(u32, f32)>,
    ) -> Result<HitsResponse, ExecError> {
        let mut scratch = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        self.engine()
            .search_hits_into(term_ids, strategy, n, &mut scratch, out)
    }

    /// Conjunctive BM25 via the skipping access path, through this
    /// executor's scratch arena. See
    /// [`QueryEngine::search_conjunctive_skipping_hits_into`].
    pub fn search_conjunctive_skipping_hits_into(
        &self,
        term_ids: &[u32],
        n: usize,
        out: &mut Vec<(u32, f32)>,
    ) -> Result<HitsResponse, ExecError> {
        let mut scratch = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        self.engine()
            .search_conjunctive_skipping_hits_into(term_ids, n, &mut scratch, out)
    }

    /// Cumulative hot-path work counters of this executor's scratch arena
    /// (see [`crate::HotPathStats`]); the pruning bench diffs snapshots
    /// around query spans to attribute decodes and scored rows.
    pub fn hot_stats(&self) -> crate::HotPathStats {
        self.scratch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .hot_stats()
    }

    /// Test hook: overwrites the executor's scratch arena with
    /// seed-derived garbage (see [`QueryScratch::poison`]). Queries must
    /// produce bit-identical results regardless.
    pub fn poison_scratch(&self, seed: u64) {
        self.scratch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .poison(seed);
    }

    /// Convenience: search by term strings, returning just the hits. See
    /// [`QueryEngine::search_terms`].
    pub fn search_terms(
        &self,
        terms: &[&str],
        strategy: SearchStrategy,
        n: usize,
    ) -> Vec<SearchResult> {
        self.engine().search_terms(terms, strategy, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use x100_corpus::{CollectionConfig, SyntheticCollection};

    fn setup() -> (SyntheticCollection, QueryExecutor) {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = Arc::new(InvertedIndex::build(&c, &IndexConfig::compressed()));
        let exec = QueryExecutor::new(idx);
        (c, exec)
    }

    #[test]
    fn executor_matches_borrowing_engine() {
        let (c, exec) = setup();
        let engine = QueryEngine::new(exec.index());
        for q in c.eval_queries.iter().take(3) {
            let a = exec.search(&q.terms, SearchStrategy::Bm25, 10).unwrap();
            let b = engine.search(&q.terms, SearchStrategy::Bm25, 10).unwrap();
            assert_eq!(a.results, b.results);
        }
    }

    #[test]
    fn clones_share_index_and_pool() {
        let (_, exec) = setup();
        let clone = exec.clone();
        assert!(Arc::ptr_eq(exec.index(), clone.index()));
        assert!(Arc::ptr_eq(exec.buffers(), clone.buffers()));
        assert_eq!(exec.vector_size(), clone.vector_size());
    }

    #[test]
    fn vector_size_is_construction_time_and_inherited() {
        let (c, exec) = setup();
        let tuned = exec.clone().with_vector_size(64usize);
        assert_eq!(tuned.vector_size(), 64);
        assert_eq!(tuned.clone().vector_size(), 64);
        let q = &c.eval_queries[0];
        assert_eq!(
            exec.search(&q.terms, SearchStrategy::Bm25, 10)
                .unwrap()
                .results,
            tuned
                .search(&q.terms, SearchStrategy::Bm25, 10)
                .unwrap()
                .results,
        );
    }

    #[test]
    fn concurrent_clones_agree_with_sequential() {
        let (c, exec) = setup();
        let queries: Vec<Vec<u32>> = c.eval_queries.iter().map(|q| q.terms.clone()).collect();
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| {
                exec.search(q, SearchStrategy::Bm25TwoPass, 10)
                    .unwrap()
                    .results
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let exec = exec.clone();
                let queries = &queries;
                let sequential = &sequential;
                s.spawn(move || {
                    for (q, expect) in queries.iter().zip(sequential) {
                        let got = exec.search(q, SearchStrategy::Bm25TwoPass, 10).unwrap();
                        assert_eq!(&got.results, expect);
                    }
                });
            }
        });
    }
}
