//! Information retrieval on top of MonetDB/X100 (§3 of the paper).
//!
//! "Keyword search in a DBMS boils down to retrieving all the documents in
//! which some or all of the query terms occur" — and this crate implements
//! exactly that reduction:
//!
//! * [`index::InvertedIndex`] — the inverted index *as relational tables*:
//!   `TD[term, docid, tf]` ordered on (term, docid) with the term column
//!   replaced by a range index, `D[docid, name, length]`, and
//!   `T[term, ftd]` (§3.1).
//! * [`bm25`] — the Okapi BM25 retrieval model (equations 1–2) and the
//!   Global-By-Value 8-bit score quantization (§3.3).
//! * [`engine::QueryEngine`] — translates keyword queries into X100
//!   operator pipelines: boolean AND/OR as merge-(outer-)joins, BM25 as a
//!   vectorized `Project` + `TopN`, plus the paper's optimization ladder:
//!   two-pass processing, score materialization, and quantization.
//! * [`spill::SpillingIndexBuilder`] — index construction under an explicit
//!   posting-memory budget: sorted on-disk runs + k-way merge, producing
//!   bit-identical indexes to the in-memory builders.
//! * [`segment`] — index persistence: the whole index written to one
//!   checksummed segment file and reopened disk-backed, with posting blocks
//!   `pread` on demand through the buffer pool.
//!
//! The Table 2 experiment in `x100-bench` drives these APIs end to end.
//!
//! # Example
//!
//! ```
//! use x100_corpus::{CollectionConfig, SyntheticCollection};
//! use x100_ir::{IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};
//!
//! let collection = SyntheticCollection::generate(&CollectionConfig::tiny());
//! let index = InvertedIndex::build(&collection, &IndexConfig::default());
//! let engine = QueryEngine::new(&index);
//! let query = &collection.eval_queries[0];
//! let response = engine.search(&query.terms, SearchStrategy::Bm25, 20).unwrap();
//! assert!(response.results.len() <= 20);
//! // Scores are descending.
//! assert!(response.results.windows(2).all(|w| w[0].score >= w[1].score));
//! ```

pub mod bm25;
pub mod boolean;
pub mod builder;
pub mod columns;
pub mod engine;
pub mod executor;
pub mod hot;
pub mod index;
mod paged;
pub mod segment;
pub mod skipping;
pub mod spill;

pub use bm25::{Bm25Params, CollectionStats, Quantizer};
pub use boolean::BooleanQuery;
pub use builder::{build_index_streaming, StreamingIndexBuilder};
pub use columns::{IndexColumns, IndexColumnsWriter};
pub use engine::{HitsResponse, QueryEngine, SearchResponse, SearchResult, SearchStrategy};
pub use executor::QueryExecutor;
pub use hot::{HotPathStats, QueryScratch, ScratchPool};
pub use index::{IndexConfig, InvertedIndex, Materialize};
pub use segment::SegmentOpenStats;
pub use skipping::{intersect_skipping, PostingCursor};
pub use spill::{
    build_index_streaming_spill, merge_run_sources, SpillConfig, SpillError, SpillStats,
    SpillingIndexBuilder,
};
pub use x100_exec::ExecError;
pub use x100_storage::SegmentError;
