//! Paged segment metadata: the vocabulary and document table as 4 KiB
//! record pages served through the buffer pool, with small resident
//! directories.
//!
//! A version-2 segment stores its variable-length metadata — the term
//! strings and the document names — as ordinary u32 [`Column`]s whose
//! blocks are self-framed **record pages**: [`PAGE_VALUES`] words each, one
//! column block per page, so the existing prefix-sum block directory,
//! `pread`-on-miss loading and buffer-pool eviction apply to strings
//! exactly as they do to posting columns. Opening a segment materializes
//! only the per-page directories defined here — [`TermFences`] (the
//! lexicographically first term of every vocabulary page) and [`NamesDir`]
//! (the first docid of every name page) — which is what makes a segment
//! open O(block directory) instead of O(collection).
//!
//! # Page layout
//!
//! Every page is exactly [`PAGE_VALUES`] little-endian u32 words:
//!
//! ```text
//! word 0            record count n (≥ 1 for every written page)
//! words 1..=n       per-record end offsets into the data area, ascending
//! words n+1..       record bytes, packed 4 per word, zero padded
//! ```
//!
//! Record `j` spans data bytes `[end[j-1], end[j])` (with `end[-1] = 0`).
//! A vocabulary record is `[u32 term id][UTF-8 term]`, sorted
//! lexicographically across pages; a document-name record is the UTF-8
//! name, in docid order. A record that cannot fit a fresh page is a
//! [`SegmentError::TooLarge`] at write time, so the reader never needs a
//! record-spans-pages case.

use std::ops::Range;
use std::sync::{Arc, OnceLock};

use x100_compress::{Codec, ENTRY_POINT_STRIDE};
use x100_storage::{Column, ColumnBuilder, SegmentError};

/// Words (u32 values) per record page: 4 KiB, one column block per page.
pub(crate) const PAGE_VALUES: usize = 1024;

/// Bytes of embedded term id at the head of a vocabulary record.
const TERM_ID_BYTES: usize = 4;

const _: () = assert!(PAGE_VALUES.is_multiple_of(ENTRY_POINT_STRIDE));

/// Builds a records column page by page: records append into the current
/// page, which seals as a full [`PAGE_VALUES`]-word column block the moment
/// the next record would not fit.
pub(crate) struct RecordPagesBuilder {
    builder: ColumnBuilder,
    /// Per-record end offsets of the open page's data area.
    ends: Vec<u32>,
    /// The open page's packed record bytes.
    bytes: Vec<u8>,
    /// Records per sealed page.
    counts: Vec<u32>,
    total_bytes: u64,
    too_large: &'static str,
}

impl RecordPagesBuilder {
    pub(crate) fn new(name: &str, too_large: &'static str) -> Self {
        RecordPagesBuilder {
            builder: ColumnBuilder::with_block_size(name, Codec::Raw, PAGE_VALUES),
            ends: Vec::new(),
            bytes: Vec::new(),
            counts: Vec::new(),
            total_bytes: 0,
            too_large,
        }
    }

    fn fits(&self, extra: usize) -> bool {
        1 + (self.ends.len() + 1) + (self.bytes.len() + extra).div_ceil(4) <= PAGE_VALUES
    }

    /// Appends one record. Returns `true` when the record opened a new page
    /// (callers use this to collect per-page directory entries).
    pub(crate) fn push(&mut self, record: &[u8]) -> Result<bool, SegmentError> {
        if !self.fits(record.len()) {
            if self.ends.is_empty() {
                return Err(SegmentError::TooLarge(self.too_large));
            }
            self.seal_page();
            if !self.fits(record.len()) {
                return Err(SegmentError::TooLarge(self.too_large));
            }
        }
        let first_of_page = self.ends.is_empty();
        self.bytes.extend_from_slice(record);
        self.ends.push(self.bytes.len() as u32);
        self.total_bytes += record.len() as u64;
        Ok(first_of_page)
    }

    fn seal_page(&mut self) {
        debug_assert!(!self.ends.is_empty(), "sealed an empty page");
        let n = self.ends.len();
        self.builder.push(n as u32);
        for &e in &self.ends {
            self.builder.push(e);
        }
        for chunk in self.bytes.chunks(4) {
            let mut w = [0u8; 4];
            w[..chunk.len()].copy_from_slice(chunk);
            self.builder.push(u32::from_le_bytes(w));
        }
        for _ in (1 + n + self.bytes.len().div_ceil(4))..PAGE_VALUES {
            self.builder.push(0);
        }
        self.counts.push(n as u32);
        self.ends.clear();
        self.bytes.clear();
    }

    /// Seals the open page (if any) and returns the finished column, the
    /// per-page record counts, and the total record bytes written.
    pub(crate) fn finish(mut self) -> (Column, Vec<u32>, u64) {
        if !self.ends.is_empty() {
            self.seal_page();
        }
        (self.builder.finish(), self.counts, self.total_bytes)
    }
}

/// A structural view over one decoded record page.
///
/// Construction panics on malformed pages: every byte of the file was
/// checksummed when the segment opened, so a page that violates its own
/// framing is a writer bug, never bad input.
pub(crate) struct PageView<'a> {
    words: &'a [u32],
    count: usize,
}

impl<'a> PageView<'a> {
    pub(crate) fn new(words: &'a [u32]) -> Self {
        assert_eq!(words.len(), PAGE_VALUES, "record page has the wrong extent");
        let count = words[0] as usize;
        assert!(
            (1..=PAGE_VALUES - 2).contains(&count),
            "record page count out of range"
        );
        let total = words[count] as usize;
        assert!(
            1 + count + total.div_ceil(4) <= PAGE_VALUES,
            "record page overflows its extent"
        );
        PageView { words, count }
    }

    pub(crate) fn record_count(&self) -> usize {
        self.count
    }

    /// Copies record `j`'s bytes into `out` (cleared first).
    pub(crate) fn record_into(&self, j: usize, out: &mut Vec<u8>) {
        assert!(j < self.count, "record index out of range");
        let start = if j == 0 { 0 } else { self.words[j] as usize };
        let end = self.words[j + 1] as usize;
        assert!(start <= end, "record page ends not monotone");
        let data = &self.words[1 + self.count..];
        out.clear();
        for k in start..end {
            out.push((data[k / 4] >> (8 * (k % 4))) as u8);
        }
    }
}

/// Decodes page `page` of a records column into `buf` (one block, aligned,
/// so the read stays on the single-block decode path).
pub(crate) fn read_page(col: &Column, page: usize, buf: &mut Vec<u32>) {
    col.read_range(page * PAGE_VALUES, PAGE_VALUES, buf)
        .expect("verified record page must read");
}

/// One value of a paged u32 column — the cold path: decodes the enclosing
/// entry-point window into a small fresh stage. Hot-path reads go through
/// the pinned windows in `QueryScratch` instead.
pub(crate) fn col_value(col: &Column, idx: usize) -> u32 {
    let aligned = idx - idx % ENTRY_POINT_STRIDE;
    let take = ENTRY_POINT_STRIDE.min(col.len() - aligned);
    let mut buf = Vec::with_capacity(take);
    col.read_range(aligned, take, &mut buf)
        .expect("verified column must read");
    buf[idx - aligned]
}

/// The resident fence-key index over the paged vocabulary: the
/// lexicographically first term and the record count of every page.
#[derive(Debug)]
pub(crate) struct TermFences {
    /// Total UTF-8 bytes across all term strings (accounting only).
    pub(crate) total_bytes: u64,
    /// First (lexicographically lowest) term of each page, ascending.
    pub(crate) first_keys: Vec<String>,
    /// Records per page, aligned with `first_keys`.
    pub(crate) counts: Vec<u32>,
}

impl TermFences {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.total_bytes.to_le_bytes());
        out.extend_from_slice(&(self.first_keys.len() as u32).to_le_bytes());
        for (key, &count) in self.first_keys.iter().zip(&self.counts) {
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key.as_bytes());
        }
        out
    }

    /// Decodes and cross-validates the fences against the vocabulary page
    /// count and the declared term count.
    pub(crate) fn decode(
        bytes: &[u8],
        num_terms: usize,
        pages: usize,
    ) -> Result<Self, SegmentError> {
        if bytes.len() < 12 {
            return Err(SegmentError::Corrupt("term fences truncated"));
        }
        let total_bytes = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let page_count = usize::try_from(u32::from_le_bytes(bytes[8..12].try_into().unwrap()))
            .map_err(|_| SegmentError::Corrupt("fence page count out of range"))?;
        if page_count != pages {
            return Err(SegmentError::Corrupt(
                "fence count disagrees with vocabulary pages",
            ));
        }
        let mut rest = &bytes[12..];
        let mut first_keys = Vec::with_capacity(page_count.min(rest.len() / 8 + 1));
        let mut counts = Vec::with_capacity(page_count.min(rest.len() / 8 + 1));
        let mut records = 0u64;
        for _ in 0..page_count {
            if rest.len() < 8 {
                return Err(SegmentError::Corrupt("term fences truncated"));
            }
            let count = u32::from_le_bytes(rest[0..4].try_into().unwrap());
            if count == 0 {
                return Err(SegmentError::Corrupt("empty vocabulary page"));
            }
            let key_len = u32::from_le_bytes(rest[4..8].try_into().unwrap()) as usize;
            rest = &rest[8..];
            if rest.len() < key_len {
                return Err(SegmentError::Corrupt("term fences truncated"));
            }
            let key = std::str::from_utf8(&rest[..key_len])
                .map_err(|_| SegmentError::Corrupt("fence key is not UTF-8"))?;
            if first_keys
                .last()
                .is_some_and(|prev: &String| prev.as_str() >= key)
            {
                return Err(SegmentError::Corrupt("fence keys not strictly ascending"));
            }
            first_keys.push(key.to_owned());
            counts.push(count);
            records += u64::from(count);
            rest = &rest[key_len..];
        }
        if !rest.is_empty() {
            return Err(SegmentError::Corrupt("trailing bytes after term fences"));
        }
        if records != num_terms as u64 {
            return Err(SegmentError::Corrupt(
                "fence counts disagree with the term count",
            ));
        }
        Ok(TermFences {
            total_bytes,
            first_keys,
            counts,
        })
    }

    pub(crate) fn resident_bytes(&self) -> usize {
        self.first_keys
            .iter()
            .map(|k| k.len() + std::mem::size_of::<String>())
            .sum::<usize>()
            + self.counts.len() * 4
    }
}

/// The resident directory over the paged document names: the first docid
/// of each page (pages hold consecutive docids).
#[derive(Debug)]
pub(crate) struct NamesDir {
    /// Total UTF-8 bytes across all document names (accounting only).
    pub(crate) total_bytes: u64,
    /// First docid of each page, plus a final entry equal to `num_docs`.
    pub(crate) starts: Vec<u32>,
}

impl NamesDir {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.total_bytes.to_le_bytes());
        out.extend_from_slice(&((self.starts.len() - 1) as u32).to_le_bytes());
        for &s in &self.starts {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Decodes and cross-validates the directory against the name page
    /// count and the declared document count.
    pub(crate) fn decode(
        bytes: &[u8],
        num_docs: usize,
        pages: usize,
    ) -> Result<Self, SegmentError> {
        if bytes.len() < 12 {
            return Err(SegmentError::Corrupt("names directory truncated"));
        }
        let total_bytes = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let page_count = usize::try_from(u32::from_le_bytes(bytes[8..12].try_into().unwrap()))
            .map_err(|_| SegmentError::Corrupt("names page count out of range"))?;
        if page_count != pages {
            return Err(SegmentError::Corrupt(
                "names directory disagrees with name pages",
            ));
        }
        let expect = (page_count + 1)
            .checked_mul(4)
            .and_then(|n| n.checked_add(12))
            .ok_or(SegmentError::Corrupt("names page count overflows"))?;
        if bytes.len() != expect {
            return Err(SegmentError::Corrupt(
                "names directory has the wrong length",
            ));
        }
        let starts: Vec<u32> = bytes[12..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if starts[0] != 0 {
            return Err(SegmentError::Corrupt("names directory must start at zero"));
        }
        if starts.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SegmentError::Corrupt(
                "names directory not strictly ascending",
            ));
        }
        if u64::from(*starts.last().expect("pages + 1 >= 1")) != num_docs as u64 {
            return Err(SegmentError::Corrupt(
                "names directory disagrees with the document count",
            ));
        }
        Ok(NamesDir {
            total_bytes,
            starts,
        })
    }

    pub(crate) fn resident_bytes(&self) -> usize {
        self.starts.len() * 4
    }
}

/// Builds the sorted, paged vocabulary column: records are
/// `[u32 term id][UTF-8 term]`, already sorted lexicographically by the
/// caller.
pub(crate) fn build_term_pages<'a>(
    sorted: impl Iterator<Item = (&'a str, u32)>,
) -> Result<(Column, TermFences), SegmentError> {
    let mut pages = RecordPagesBuilder::new("terms", "term record exceeds a vocabulary page");
    let mut first_keys = Vec::new();
    let mut rec = Vec::new();
    let mut utf8_bytes = 0u64;
    for (s, id) in sorted {
        debug_assert!(
            first_keys.last().is_none_or(|k: &String| k.as_str() < s) || !rec.is_empty(),
            "terms must arrive sorted"
        );
        rec.clear();
        rec.extend_from_slice(&id.to_le_bytes());
        rec.extend_from_slice(s.as_bytes());
        utf8_bytes += s.len() as u64;
        if pages.push(&rec)? {
            first_keys.push(s.to_owned());
        }
    }
    let (col, counts, _) = pages.finish();
    Ok((
        col,
        TermFences {
            total_bytes: utf8_bytes,
            first_keys,
            counts,
        },
    ))
}

/// Builds the paged document-name column: records are the UTF-8 names in
/// docid order.
pub(crate) fn build_name_pages<'a>(
    names: impl Iterator<Item = std::borrow::Cow<'a, str>>,
) -> Result<(Column, NamesDir), SegmentError> {
    let mut pages = RecordPagesBuilder::new("doc_names", "document name exceeds a page");
    for name in names {
        pages.push(name.as_bytes())?;
    }
    let (col, counts, total_bytes) = pages.finish();
    let mut starts = Vec::with_capacity(counts.len() + 1);
    starts.push(0u32);
    for &c in &counts {
        let prev = *starts.last().expect("starts begins nonempty");
        starts.push(prev + c);
    }
    Ok((
        col,
        NamesDir {
            total_bytes,
            starts,
        },
    ))
}

/// Binary-searches the paged vocabulary: the fence keys select the one
/// page that can hold `term`, then a binary search over that page's
/// records finds it; the record's embedded id is the answer. Cold path —
/// stages one page per call.
pub(crate) fn lookup_term(terms: &Column, fences: &TermFences, term: &str) -> Option<u32> {
    let p = fences.first_keys.partition_point(|k| k.as_str() <= term);
    if p == 0 {
        return None;
    }
    let mut words = Vec::new();
    read_page(terms, p - 1, &mut words);
    let view = PageView::new(&words);
    let mut rec = Vec::new();
    let (mut lo, mut hi) = (0usize, view.record_count());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        view.record_into(mid, &mut rec);
        match rec[TERM_ID_BYTES..].cmp(term.as_bytes()) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => {
                return Some(u32::from_le_bytes(rec[..TERM_ID_BYTES].try_into().unwrap()))
            }
        }
    }
    None
}

/// Fetches one document name from the paged name column. Cold path —
/// stages one page per call.
pub(crate) fn lookup_name(names: &Column, dir: &NamesDir, docid: u32) -> Option<String> {
    let &num_docs = dir.starts.last().expect("directory is never empty");
    if docid >= num_docs {
        return None;
    }
    let page = dir.starts.partition_point(|&s| s <= docid) - 1;
    let mut words = Vec::new();
    read_page(names, page, &mut words);
    let view = PageView::new(&words);
    let mut rec = Vec::new();
    view.record_into((docid - dir.starts[page]) as usize, &mut rec);
    Some(String::from_utf8(rec).expect("doc-name page holds the UTF-8 that was written"))
}

/// Everything a reopened index keeps of its metadata: five disk-backed
/// columns plus the two small resident directories.
#[derive(Debug)]
pub(crate) struct PagedMetadata {
    pub(crate) terms: Column,
    pub(crate) fences: TermFences,
    pub(crate) names: Column,
    pub(crate) names_dir: NamesDir,
    pub(crate) doc_lens: Column,
    pub(crate) doc_freqs: Column,
    pub(crate) offsets: Column,
    pub(crate) num_terms: usize,
    pub(crate) num_postings: usize,
    /// Fully materialized doc lens, built lazily for the relational
    /// (oracle) paths that need a dense slice. The fused serving path never
    /// touches this.
    pub(crate) lens_cache: OnceLock<Arc<Vec<i32>>>,
}

impl PagedMetadata {
    pub(crate) fn term_id(&self, term: &str) -> Option<u32> {
        lookup_term(&self.terms, &self.fences, term)
    }

    pub(crate) fn doc_name(&self, docid: u32) -> Option<String> {
        lookup_name(&self.names, &self.names_dir, docid)
    }

    pub(crate) fn term_range(&self, term: u32) -> Range<usize> {
        let t = term as usize;
        if t >= self.num_terms {
            return 0..0;
        }
        let start = col_value(&self.offsets, t) as usize;
        let end = (col_value(&self.offsets, t + 1) as usize).min(self.num_postings);
        if start > end {
            0..0
        } else {
            start..end
        }
    }

    pub(crate) fn doc_freq(&self, term: u32) -> u32 {
        let t = term as usize;
        if t >= self.num_terms {
            0
        } else {
            col_value(&self.doc_freqs, t)
        }
    }

    pub(crate) fn num_docs(&self) -> usize {
        self.doc_lens.len()
    }

    pub(crate) fn materialized_lens(&self) -> &Arc<Vec<i32>> {
        self.lens_cache.get_or_init(|| {
            Arc::new(
                self.doc_lens
                    .read_all()
                    .into_iter()
                    .map(|v| v as i32)
                    .collect(),
            )
        })
    }

    /// The vocabulary in term-id order, re-read from the sorted pages.
    pub(crate) fn all_terms(&self) -> Vec<String> {
        let mut vocab = vec![String::new(); self.num_terms];
        let mut words = Vec::new();
        let mut rec = Vec::new();
        for page in 0..self.terms.block_count() {
            read_page(&self.terms, page, &mut words);
            let view = PageView::new(&words);
            for j in 0..view.record_count() {
                view.record_into(j, &mut rec);
                let id = u32::from_le_bytes(rec[..TERM_ID_BYTES].try_into().unwrap()) as usize;
                vocab[id] = String::from_utf8(rec[TERM_ID_BYTES..].to_vec())
                    .expect("term page holds the UTF-8 that was written");
            }
        }
        vocab
    }

    /// Bytes of metadata the open pinned in memory: the fence keys and the
    /// two page directories. Everything else stays on disk.
    pub(crate) fn resident_meta_bytes(&self) -> usize {
        self.fences.resident_bytes() + self.names_dir.resident_bytes()
    }

    /// Bytes the version-1 fully materialized open held resident for the
    /// same metadata: owned vocabulary strings, the document-name column,
    /// and the dense doc-len / doc-freq / offset arrays.
    pub(crate) fn full_materialized_bytes(&self) -> usize {
        let num_docs = self.num_docs();
        let vocab =
            self.fences.total_bytes as usize + self.num_terms * std::mem::size_of::<String>();
        let names = self.names_dir.total_bytes as usize + num_docs * 8;
        vocab + names + num_docs * 4 + self.num_terms * 4 + (self.num_terms + 1) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::borrow::Cow;

    fn paged_vocab(terms: &[(&str, u32)]) -> (Column, TermFences) {
        build_term_pages(terms.iter().map(|&(s, id)| (s, id))).unwrap()
    }

    /// A vocabulary large enough to span several pages, with ids assigned
    /// in a deliberately non-sorted order.
    fn multi_page_vocab() -> Vec<(String, u32)> {
        let mut terms: Vec<String> = (0..700)
            .map(|i| format!("term-{i:04}-{}", "x".repeat(i % 37)))
            .collect();
        terms.sort();
        terms
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, (i as u32).wrapping_mul(2654435761) % 100_000))
            .collect()
    }

    #[test]
    fn record_pages_roundtrip_including_empty_records() {
        let mut b = RecordPagesBuilder::new("r", "too big");
        let records: Vec<Vec<u8>> = (0..300).map(|i| vec![i as u8; i % 97]).collect();
        for r in &records {
            b.push(r).unwrap();
        }
        let (col, counts, total) = b.finish();
        assert_eq!(total, records.iter().map(|r| r.len() as u64).sum::<u64>());
        assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), 300);
        assert_eq!(col.len(), counts.len() * PAGE_VALUES);
        let mut words = Vec::new();
        let mut rec = Vec::new();
        let mut i = 0;
        for (page, &count) in counts.iter().enumerate() {
            read_page(&col, page, &mut words);
            let view = PageView::new(&words);
            assert_eq!(view.record_count(), count as usize);
            for j in 0..view.record_count() {
                view.record_into(j, &mut rec);
                assert_eq!(rec, records[i], "record {i}");
                i += 1;
            }
        }
        assert_eq!(i, 300);
    }

    #[test]
    fn oversized_record_is_too_large() {
        let mut b = RecordPagesBuilder::new("r", "record too big for a page");
        b.push(&[1, 2, 3]).unwrap();
        let big = vec![0u8; PAGE_VALUES * 4];
        assert!(matches!(
            b.push(&big),
            Err(SegmentError::TooLarge("record too big for a page"))
        ));
    }

    #[test]
    fn boundary_terms_of_every_page_resolve() {
        let vocab = multi_page_vocab();
        let (col, fences) =
            build_term_pages(vocab.iter().map(|(s, id)| (s.as_str(), *id))).unwrap();
        assert!(fences.first_keys.len() > 1, "fixture must span pages");
        // First and last record of every page, located via the counts.
        let mut base = 0usize;
        for (p, &count) in fences.counts.iter().enumerate() {
            for j in [0, count as usize - 1] {
                let (s, id) = &vocab[base + j];
                assert_eq!(
                    lookup_term(&col, &fences, s),
                    Some(*id),
                    "page {p} slot {j}"
                );
            }
            base += count as usize;
        }
    }

    #[test]
    fn absent_terms_between_fence_keys_miss() {
        let vocab = multi_page_vocab();
        let (col, fences) =
            build_term_pages(vocab.iter().map(|(s, id)| (s.as_str(), *id))).unwrap();
        // Probes lexicographically adjacent to real terms, before the first
        // key and after the last — all absent.
        assert_eq!(lookup_term(&col, &fences, ""), None);
        assert_eq!(lookup_term(&col, &fences, "term-"), None);
        assert_eq!(lookup_term(&col, &fences, "zzzz"), None);
        for key in &fences.first_keys {
            let just_after = format!("{key}\u{1}");
            assert_eq!(
                lookup_term(&col, &fences, &just_after),
                None,
                "{just_after}"
            );
            let mut just_before = key.clone();
            just_before.pop();
            if !vocab.iter().any(|(s, _)| *s == just_before) {
                assert_eq!(lookup_term(&col, &fences, &just_before), None);
            }
        }
    }

    #[test]
    fn single_term_and_empty_vocabularies() {
        let (col, fences) = paged_vocab(&[("only", 7)]);
        assert_eq!(lookup_term(&col, &fences, "only"), Some(7));
        assert_eq!(lookup_term(&col, &fences, "onl"), None);
        assert_eq!(lookup_term(&col, &fences, "onlyy"), None);
        let (col, fences) = paged_vocab(&[]);
        assert!(col.is_empty());
        assert_eq!(lookup_term(&col, &fences, "anything"), None);
    }

    #[test]
    fn name_pages_resolve_every_docid_and_reject_out_of_range() {
        let names: Vec<String> = (0..2500).map(|i| format!("doc-{i:08}")).collect();
        let (col, dir) = build_name_pages(names.iter().map(|n| Cow::Borrowed(n.as_str()))).unwrap();
        assert!(dir.starts.len() > 2, "fixture must span pages");
        for d in [0u32, 1, 137, 2499] {
            assert_eq!(
                lookup_name(&col, &dir, d).as_deref(),
                Some(names[d as usize].as_str())
            );
        }
        assert_eq!(lookup_name(&col, &dir, 2500), None);
        assert_eq!(lookup_name(&col, &dir, u32::MAX), None);
    }

    #[test]
    fn fences_and_dir_roundtrip_through_their_sections() {
        let vocab = multi_page_vocab();
        let (col, fences) =
            build_term_pages(vocab.iter().map(|(s, id)| (s.as_str(), *id))).unwrap();
        let back = TermFences::decode(&fences.encode(), vocab.len(), col.block_count()).unwrap();
        assert_eq!(back.first_keys, fences.first_keys);
        assert_eq!(back.counts, fences.counts);
        assert_eq!(back.total_bytes, fences.total_bytes);
        let names: Vec<String> = (0..999).map(|i| format!("n{i}")).collect();
        let (ncol, dir) =
            build_name_pages(names.iter().map(|n| Cow::Borrowed(n.as_str()))).unwrap();
        let back = NamesDir::decode(&dir.encode(), names.len(), ncol.block_count()).unwrap();
        assert_eq!(back.starts, dir.starts);
        assert_eq!(back.total_bytes, dir.total_bytes);
        // Wrong declared counts are typed corruption.
        assert!(TermFences::decode(&fences.encode(), vocab.len() + 1, col.block_count()).is_err());
        assert!(TermFences::decode(&fences.encode(), vocab.len(), col.block_count() + 1).is_err());
        assert!(NamesDir::decode(&dir.encode(), names.len() - 1, ncol.block_count()).is_err());
        assert!(NamesDir::decode(&dir.encode(), names.len(), ncol.block_count() + 1).is_err());
    }

    proptest! {
        /// Differential pin: paged lookup over arbitrary sorted unique
        /// vocabularies answers exactly like the old materialized
        /// `Vec<String>` binary search, for present and absent probes.
        #[test]
        fn paged_lookup_matches_materialized_binary_search(
            raw in prop::collection::vec(0u32..1_000_000, 0..200),
            probe_seeds in prop::collection::vec(0u32..1_200_000, 0..40),
        ) {
            // The shim has no string strategies, so derive strings of
            // varying length from integer seeds.
            let word = |seed: u32| {
                let mut s = String::new();
                let mut v = seed;
                for _ in 0..(seed % 13) {
                    s.push(char::from(b'a' + (v % 26) as u8));
                    v = v.wrapping_mul(2654435761).wrapping_add(1) >> 3;
                }
                s
            };
            let mut sorted: Vec<String> = raw.iter().map(|&s| word(s)).collect();
            sorted.sort();
            sorted.dedup();
            let probes: Vec<String> = probe_seeds.iter().map(|&s| word(s)).collect();
            let ids: Vec<u32> = (0..sorted.len() as u32).map(|i| i.wrapping_mul(97) ^ 5).collect();
            let (col, fences) = build_term_pages(
                sorted.iter().zip(&ids).map(|(s, &id)| (s.as_str(), id)),
            ).unwrap();
            for probe in probes.iter().chain(sorted.iter()) {
                let expect = sorted
                    .binary_search_by(|s| s.as_str().cmp(probe))
                    .ok()
                    .map(|i| ids[i]);
                prop_assert_eq!(lookup_term(&col, &fences, probe), expect, "{}", probe);
            }
        }
    }
}
