//! Allocation-free fused query execution over a reusable scratch arena.
//!
//! The relational path ([`crate::QueryEngine::search`]) builds a fresh
//! operator tree per query — scans, joins, projections, TopN — each with
//! its own staging buffers. That is the right shape for demonstrating the
//! paper's plans, but a serving worker answering thousands of queries per
//! second spends a measurable slice of its time in the allocator, and
//! allocator traffic is exactly the kind of per-tuple overhead §2 of the
//! paper rails against.
//!
//! This module is the serving hot path: a [`QueryScratch`] owns every
//! buffer a query needs (posting-cursor windows, batch score arrays, the
//! top-k heap, term/coefficient tables), *cleared — not freed — between
//! queries*. After a warmup query has grown the buffers to their
//! steady-state sizes, executing a query performs **zero heap
//! allocations** (pinned by `tests/hot_path_allocs.rs`).
//!
//! Results are bit-identical to the relational path for all six
//! [`SearchStrategy`] rungs; `tests/scratch_differential.rs` holds the two
//! paths against each other property-style, including after deliberately
//! corrupting the scratch with [`QueryScratch::poison`]. The equivalence
//! rests on three replicated contracts:
//!
//! * **Scoring arithmetic** — the exact expression shape the relational
//!   plan evaluates (`coef * (tf / (tf + norm))` folded left-to-right,
//!   absent outer-join terms contributing `tf = 0`), in plain IEEE f32
//!   with no FMA contraction, so every intermediate rounds identically.
//! * **Top-k selection** — a replica of `TopN`'s bounded heap including
//!   its IEEE `score <= min` cheap-reject (*not* equivalent to
//!   sort-then-truncate when `+0.0`/`-0.0` tie at the boundary) and its
//!   arrival-order tie-break.
//! * **Buffer accounting** — cursors refill entry-point-aligned windows
//!   clamped to block boundaries and charge [`BufferManager::touch`] once
//!   per block entry, exactly like `ColumnScan`.
//!
//! When the `simd` feature is enabled and the CPU has AVX2, the per-term
//! scoring loop over each candidate batch runs 8 lanes wide; conversion
//! (`i32 -> f32`), divide, multiply and add are all IEEE-exact operations,
//! so the wide kernels are bit-identical to the scalar loop (pinned by
//! `tests/scratch_differential.rs` against the forced-scalar fallback).

use std::ops::Range;

use x100_compress::ENTRY_POINT_STRIDE;
use x100_exec::ExecError;
use x100_storage::{BufferManager, Column};

use crate::bm25::idf;
use crate::engine::SearchStrategy;
use crate::index::{InvertedIndex, Materialize, MetaView};

/// A staged window of one column: decompressed values covering
/// `[start, start + stage.len())`, plus the block the cursor currently
/// pins (charged to the buffer manager on entry, not on every refill).
///
/// The refill math mirrors `ColumnScan::refill` exactly: start at the
/// entry point at or below the read position, span enough strides to cover
/// one vector, clamp to the block end. Staying inside one block keeps
/// buffer accounting per block honest *and* keeps `Column::read_range` on
/// its single-block path, which decodes into the reused buffer without
/// allocating.
#[derive(Debug, Default)]
struct Window {
    stage: Vec<u32>,
    start: usize,
    pinned_block: Option<usize>,
}

impl Window {
    /// Forgets staged data and the block pin, keeping the buffer capacity.
    fn invalidate(&mut self) {
        self.stage.clear();
        self.start = usize::MAX;
        self.pinned_block = None;
    }

    /// The value at absolute position `pos`, refilling the window if `pos`
    /// is not staged.
    fn value_at(
        &mut self,
        col: &Column,
        buffers: &BufferManager,
        vector_size: usize,
        pos: usize,
    ) -> Result<u32, ExecError> {
        // `start` may be the usize::MAX sentinel; wrapping keeps the
        // in-range check branchless and correct (a huge offset misses).
        let off = pos.wrapping_sub(self.start);
        if off < self.stage.len() {
            return Ok(self.stage[off]);
        }
        let aligned = pos - pos % ENTRY_POINT_STRIDE;
        let block_size = col.block_size();
        let block_idx = aligned / block_size;
        let block_end = ((block_idx + 1) * block_size).min(col.len());
        let want_end = (pos + vector_size)
            .next_multiple_of(ENTRY_POINT_STRIDE)
            .min(block_end);
        if self.pinned_block != Some(block_idx) {
            buffers.touch(col, block_idx);
            self.pinned_block = Some(block_idx);
        }
        col.read_range(aligned, want_end - aligned, &mut self.stage)
            .map_err(ExecError::from)?;
        self.start = aligned;
        Ok(self.stage[pos - aligned])
    }
}

/// A reusable cursor over one term's posting range in the TD table:
/// current docid plus lazily windowed access to the payload column.
#[derive(Debug, Default)]
struct TermCursor {
    /// Absolute TD row bounds of this term's postings.
    end: usize,
    /// Absolute TD row of the current posting.
    pos: usize,
    /// Current docid, `None` once the range is exhausted.
    cur: Option<u32>,
    doc: Window,
    pay: Window,
}

impl TermCursor {
    /// Re-aims the cursor at a term range, invalidating staged data (but
    /// keeping buffer capacity) and loading the first docid.
    fn reset(
        &mut self,
        range: Range<usize>,
        doc_col: &Column,
        buffers: &BufferManager,
        vector_size: usize,
    ) -> Result<(), ExecError> {
        self.pos = range.start;
        self.end = range.end;
        self.doc.invalidate();
        self.pay.invalidate();
        self.load(doc_col, buffers, vector_size)
    }

    fn load(
        &mut self,
        doc_col: &Column,
        buffers: &BufferManager,
        vector_size: usize,
    ) -> Result<(), ExecError> {
        self.cur = if self.pos < self.end {
            Some(self.doc.value_at(doc_col, buffers, vector_size, self.pos)?)
        } else {
            None
        };
        Ok(())
    }

    fn advance(
        &mut self,
        doc_col: &Column,
        buffers: &BufferManager,
        vector_size: usize,
    ) -> Result<(), ExecError> {
        self.pos += 1;
        self.load(doc_col, buffers, vector_size)
    }

    /// The payload (tf or materialized score code) of the current posting.
    fn payload(
        &mut self,
        pay_col: &Column,
        buffers: &BufferManager,
        vector_size: usize,
    ) -> Result<u32, ExecError> {
        self.pay.value_at(pay_col, buffers, vector_size, self.pos)
    }
}

/// One retained top-k row: replica of `TopN`'s `HeapRow`. `seq` is the
/// 1-based arrival index among all candidate rows; the heap order is
/// `(score ascending by total_cmp, then *later* arrival first)`, so the
/// root is the row the next better candidate displaces.
#[derive(Debug, Clone, Copy, Default)]
struct HeapRow {
    score: f32,
    seq: u64,
    docid: u32,
}

/// `TopN`'s `HeapRow` ordering: ascending score (total order), ties broken
/// so the *later* arrival compares smaller (and is evicted first).
fn row_lt(a: &HeapRow, b: &HeapRow) -> bool {
    a.score
        .total_cmp(&b.score)
        .then_with(|| b.seq.cmp(&a.seq))
        .is_lt()
}

fn sift_up(heap: &mut [HeapRow], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if row_lt(&heap[i], &heap[parent]) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn sift_down(heap: &mut [HeapRow], mut i: usize) {
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < heap.len() && row_lt(&heap[l], &heap[smallest]) {
            smallest = l;
        }
        if r < heap.len() && row_lt(&heap[r], &heap[smallest]) {
            smallest = r;
        }
        if smallest == i {
            return;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
}

/// Offers one candidate row to the bounded min-heap, replicating `TopN`
/// exactly: a full heap cheap-rejects on IEEE `score <= root.score` (ties
/// keep the incumbent — and `+0.0` does *not* displace a `-0.0` root,
/// although it is total-order greater); otherwise push, then evict the
/// total-order minimum.
fn heap_offer(heap: &mut Vec<HeapRow>, n: usize, row: HeapRow) {
    if n == 0 {
        return;
    }
    if heap.len() == n && row.score <= heap[0].score {
        return;
    }
    heap.push(row);
    let last = heap.len() - 1;
    sift_up(heap, last);
    if heap.len() > n {
        let last = heap.len() - 1;
        heap.swap(0, last);
        heap.pop();
        sift_down(heap, 0);
    }
}

/// How candidate batches are scored.
#[derive(Debug, Clone, Copy)]
enum ScoreMode {
    /// Equation-2 BM25 from tf and document length at query time.
    Computed {
        /// `k1 * (1 - b)` — the constant part of the length normalizer.
        c0: f32,
        /// `k1 * b / avg_doc_len` — the per-length part.
        c1: f32,
    },
    /// Materialized f32 scores stored bit-cast in the payload column.
    MaterializedF32,
    /// Materialized quantized codes summed as small floats.
    MaterializedQ8,
}

/// Owned, reusable per-worker scratch for the fused query path.
///
/// Grown on first use, cleared — never freed — between queries: steady
/// state executes without touching the allocator. Construction is cheap
/// (all buffers start empty); each serving worker owns one, typically
/// behind the executor's internal mutex.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Query terms after dropping unknown/empty ones (duplicates kept,
    /// matching the relational path).
    terms: Vec<u32>,
    /// Per-term `idf * (k1 + 1)` constants (computed-BM25 modes).
    coefs: Vec<f32>,
    cursors: Vec<TermCursor>,
    /// Candidate docids of the batch being assembled.
    batch_docids: Vec<u32>,
    /// Term-major payload matrix: `payloads[t * vector_size + j]` is term
    /// `t`'s payload for batch row `j`, 0 where the term is absent (the
    /// outer join's missing-side convention).
    batch_payloads: Vec<u32>,
    /// Per-row length normalizers for the batch.
    norms: Vec<f32>,
    /// Per-row accumulated scores for the batch.
    scores: Vec<f32>,
    /// The bounded top-k heap.
    heap: Vec<HeapRow>,
    /// Hit staging for callers that materialize full responses.
    pub(crate) hits: Vec<(u32, f32)>,
    /// Pinned block window over a paged index's term-offset column.
    off_window: Window,
    /// Pinned block window over a paged index's doc-freq column.
    freq_window: Window,
    /// Pinned block window over a paged index's doc-len column.
    len_window: Window,
}

impl QueryScratch {
    /// An empty scratch; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Test hook: overwrites every buffer — staged column windows, batch
    /// arrays, heap, term tables, cursor positions and block pins — with
    /// garbage derived from `seed`. A subsequent query must produce
    /// bit-identical results anyway: correctness may depend only on state
    /// the query itself (re)initializes, never on leftovers.
    pub fn poison(&mut self, seed: u64) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        fn refill_u32(v: &mut Vec<u32>, next: &mut impl FnMut() -> u64) {
            let cap = v.capacity();
            v.clear();
            for _ in 0..cap {
                v.push(next() as u32);
            }
        }
        fn refill_f32(v: &mut Vec<f32>, next: &mut impl FnMut() -> u64) {
            let cap = v.capacity();
            v.clear();
            for _ in 0..cap {
                // Includes NaNs, infinities and negative zeros.
                v.push(f32::from_bits(next() as u32));
            }
        }
        refill_u32(&mut self.terms, &mut next);
        refill_f32(&mut self.coefs, &mut next);
        refill_u32(&mut self.batch_docids, &mut next);
        refill_u32(&mut self.batch_payloads, &mut next);
        refill_f32(&mut self.norms, &mut next);
        refill_f32(&mut self.scores, &mut next);
        let heap_cap = self.heap.capacity();
        self.heap.clear();
        for _ in 0..heap_cap {
            self.heap.push(HeapRow {
                score: f32::from_bits(next() as u32),
                seq: next(),
                docid: next() as u32,
            });
        }
        let hits_cap = self.hits.capacity();
        self.hits.clear();
        for _ in 0..hits_cap {
            self.hits
                .push((next() as u32, f32::from_bits(next() as u32)));
        }
        for c in &mut self.cursors {
            c.pos = next() as usize;
            c.end = next() as usize;
            c.cur = Some(next() as u32);
            for w in [&mut c.doc, &mut c.pay] {
                refill_u32(&mut w.stage, &mut next);
                w.start = next() as usize;
                w.pinned_block = Some(next() as usize);
            }
        }
        for w in [
            &mut self.off_window,
            &mut self.freq_window,
            &mut self.len_window,
        ] {
            refill_u32(&mut w.stage, &mut next);
            w.start = next() as usize;
            w.pinned_block = Some(next() as usize);
        }
    }
}

/// A pool of [`QueryScratch`] arenas for callers serving one shared
/// resource (e.g. a cluster node) from many threads at once.
///
/// [`Self::acquire`] pops a warmed arena or hands out a fresh empty one —
/// constructing an empty scratch does not allocate; its buffers grow
/// during the query it serves — and [`Self::release`] returns it. The
/// pool's high-water mark is the peak concurrency it ever saw, after
/// which acquire/release cycles are two short mutex sections and zero
/// heap traffic. Unlike a single mutex-guarded arena, concurrent queries
/// never serialize on each other: each gets its own arena.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: std::sync::Mutex<Vec<QueryScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops a pooled arena, or a fresh empty one when all are in use.
    pub fn acquire(&self) -> QueryScratch {
        self.pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    /// Returns an arena to the pool for the next query.
    pub fn release(&self, scratch: QueryScratch) {
        self.pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(scratch);
    }
}

/// A term's TD row range through the metadata view: a slice index for a
/// built index, two windowed reads of the paged offset column for a
/// reopened segment (clamped like the old open-time validation clamped).
fn term_range_of(
    view: &MetaView,
    window: &mut Window,
    buffers: &BufferManager,
    vector_size: usize,
    term: u32,
) -> Result<Range<usize>, ExecError> {
    match view {
        MetaView::Mem { term_ranges, .. } => {
            Ok(term_ranges.get(term as usize).cloned().unwrap_or(0..0))
        }
        MetaView::Paged {
            offsets,
            num_postings,
            num_terms,
            ..
        } => {
            let t = term as usize;
            if t >= *num_terms {
                return Ok(0..0);
            }
            let start = window.value_at(offsets, buffers, vector_size, t)? as usize;
            let end = (window.value_at(offsets, buffers, vector_size, t + 1)? as usize)
                .min(*num_postings);
            Ok(if start > end { 0..0 } else { start..end })
        }
    }
}

/// A term's document frequency through the metadata view.
fn doc_freq_of(
    view: &MetaView,
    window: &mut Window,
    buffers: &BufferManager,
    vector_size: usize,
    term: u32,
) -> Result<u32, ExecError> {
    match view {
        MetaView::Mem { doc_freqs, .. } => Ok(doc_freqs.get(term as usize).copied().unwrap_or(0)),
        MetaView::Paged {
            doc_freqs,
            num_terms,
            ..
        } => {
            if term as usize >= *num_terms {
                return Ok(0);
            }
            window.value_at(doc_freqs, buffers, vector_size, term as usize)
        }
    }
}

/// A document's length as f32 through the metadata view. Lengths are
/// non-negative, so the paged u32 read casts to the same f32 bits the
/// dense `i32 as f32` cast produces.
fn doc_len_f32(
    view: &MetaView,
    window: &mut Window,
    buffers: &BufferManager,
    vector_size: usize,
    docid: u32,
) -> Result<f32, ExecError> {
    match view {
        MetaView::Mem { doc_lens, .. } => Ok(doc_lens[docid as usize] as f32),
        MetaView::Paged { doc_lens, .. } => {
            Ok(window.value_at(doc_lens, buffers, vector_size, docid as usize)? as f32)
        }
    }
}

/// Runs one query through the fused path, appending up to `n`
/// `(docid, score)` hits to `out` (cleared first), best first. Returns the
/// number of passes (2 only when a two-pass strategy fell through to the
/// disjunctive plan). Bit-identical to [`crate::QueryEngine::search`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn search_into(
    index: &InvertedIndex,
    buffers: &BufferManager,
    vector_size: usize,
    term_ids: &[u32],
    strategy: SearchStrategy,
    n: usize,
    scratch: &mut QueryScratch,
    out: &mut Vec<(u32, f32)>,
) -> Result<u8, ExecError> {
    out.clear();
    if strategy.needs_materialized() && !index.has_materialized_scores() {
        return Err(ExecError::Plan(
            "strategy requires a materialized score column; build the index \
             with Materialize::F32 or Materialize::Quantized8"
                .into(),
        ));
    }
    let view = index.meta_view();
    scratch.terms.clear();
    for &t in term_ids {
        let range = term_range_of(&view, &mut scratch.off_window, buffers, vector_size, t)?;
        if !range.is_empty() {
            scratch.terms.push(t);
        }
    }
    let k = scratch.terms.len();
    if k == 0 {
        return Ok(1);
    }
    while scratch.cursors.len() < k {
        scratch.cursors.push(TermCursor::default());
    }

    let td = index.td();
    let doc_col = td.column("docid").map_err(ExecError::from)?;
    let mut passes = 1u8;
    match strategy {
        SearchStrategy::BoolAnd | SearchStrategy::BoolOr => {
            reset_cursors(&view, buffers, vector_size, scratch, doc_col)?;
            run_boolean(
                buffers,
                vector_size,
                doc_col,
                &mut scratch.cursors[..k],
                strategy == SearchStrategy::BoolAnd,
                n,
                out,
            )?;
        }
        _ => {
            let materialized = strategy.needs_materialized();
            let mode = score_mode(index, &view, buffers, vector_size, scratch, materialized)?;
            let pay_col = td
                .column(if materialized { "score" } else { "tf" })
                .map_err(ExecError::from)?;
            let two_pass = strategy.is_two_pass();
            // Single-pass strategies run the disjunctive plan directly;
            // two-pass tries conjunctive first (§3.3).
            reset_cursors(&view, buffers, vector_size, scratch, doc_col)?;
            let matched = run_ranked(
                &view,
                buffers,
                vector_size,
                doc_col,
                pay_col,
                scratch,
                mode,
                two_pass,
                n,
            )?;
            if two_pass && (matched as usize) < n && k > 1 {
                passes = 2;
                reset_cursors(&view, buffers, vector_size, scratch, doc_col)?;
                run_ranked(
                    &view,
                    buffers,
                    vector_size,
                    doc_col,
                    pay_col,
                    scratch,
                    mode,
                    false,
                    n,
                )?;
            }
            drain_heap(&mut scratch.heap, out);
        }
    }
    out.truncate(n);
    Ok(passes)
}

/// Re-aims the first `terms.len()` cursors at their term ranges.
fn reset_cursors(
    view: &MetaView,
    buffers: &BufferManager,
    vector_size: usize,
    scratch: &mut QueryScratch,
    doc_col: &Column,
) -> Result<(), ExecError> {
    let QueryScratch {
        terms,
        cursors,
        off_window,
        ..
    } = scratch;
    for (i, &t) in terms.iter().enumerate() {
        let range = term_range_of(view, off_window, buffers, vector_size, t)?;
        cursors[i].reset(range, doc_col, buffers, vector_size)?;
    }
    Ok(())
}

/// Resolves the scoring mode, filling per-term coefficients for the
/// computed variant (folded into the plan as constants relationally).
fn score_mode(
    index: &InvertedIndex,
    view: &MetaView,
    buffers: &BufferManager,
    vector_size: usize,
    scratch: &mut QueryScratch,
    materialized: bool,
) -> Result<ScoreMode, ExecError> {
    if materialized {
        return Ok(match index.config().materialize {
            Materialize::F32 => ScoreMode::MaterializedF32,
            Materialize::Quantized8 | Materialize::None => ScoreMode::MaterializedQ8,
        });
    }
    let params = index.config().params;
    let stats = index.stats();
    let QueryScratch {
        terms,
        coefs,
        freq_window,
        ..
    } = scratch;
    coefs.clear();
    for &t in terms.iter() {
        let df = doc_freq_of(view, freq_window, buffers, vector_size, t)?;
        coefs.push(idf(stats.num_docs, df) * (params.k1 + 1.0));
    }
    Ok(ScoreMode::Computed {
        c0: params.k1 * (1.0 - params.b),
        c1: params.k1 * params.b / stats.avg_doc_len,
    })
}

/// Unranked boolean retrieval: k-way docid merge (intersection or union),
/// emitting `(docid, 0.0)` in docid order with the relational path's
/// early exit after `n` hits.
fn run_boolean(
    buffers: &BufferManager,
    vector_size: usize,
    doc_col: &Column,
    cursors: &mut [TermCursor],
    conjunctive: bool,
    n: usize,
    out: &mut Vec<(u32, f32)>,
) -> Result<(), ExecError> {
    if conjunctive {
        'outer: while let Some(mut target) = cursors[0].cur {
            let mut i = 1;
            while i < cursors.len() {
                while let Some(d) = cursors[i].cur {
                    if d < target {
                        cursors[i].advance(doc_col, buffers, vector_size)?;
                    } else {
                        break;
                    }
                }
                match cursors[i].cur {
                    None => break 'outer,
                    Some(d) if d == target => i += 1,
                    Some(d) => {
                        target = d;
                        i = 0;
                    }
                }
            }
            out.push((target, 0.0));
            if out.len() >= n {
                break;
            }
            for c in cursors.iter_mut() {
                c.advance(doc_col, buffers, vector_size)?;
            }
        }
    } else {
        loop {
            let mut m: Option<u32> = None;
            for c in cursors.iter() {
                if let Some(d) = c.cur {
                    m = Some(match m {
                        None => d,
                        Some(x) => x.min(d),
                    });
                }
            }
            let Some(d) = m else { break };
            for c in cursors.iter_mut() {
                if c.cur == Some(d) {
                    c.advance(doc_col, buffers, vector_size)?;
                }
            }
            out.push((d, 0.0));
            if out.len() >= n {
                break;
            }
        }
    }
    Ok(())
}

/// Ranked retrieval: merges candidate docs (union or intersection) into
/// batches of `vector_size`, scores each batch with the wide-or-scalar
/// kernels, and offers every row to the top-k heap. Returns the total
/// candidate count (the two-pass quota check).
#[allow(clippy::too_many_arguments)]
fn run_ranked(
    view: &MetaView,
    buffers: &BufferManager,
    vector_size: usize,
    doc_col: &Column,
    pay_col: &Column,
    scratch: &mut QueryScratch,
    mode: ScoreMode,
    conjunctive: bool,
    n: usize,
) -> Result<u64, ExecError> {
    let QueryScratch {
        terms,
        coefs,
        cursors,
        batch_docids,
        batch_payloads,
        norms,
        scores,
        heap,
        len_window,
        ..
    } = scratch;
    let k = terms.len();
    let cursors = &mut cursors[..k];
    let v = vector_size;
    heap.clear();
    batch_docids.clear();
    if batch_payloads.len() < k * v {
        batch_payloads.resize(k * v, 0);
    }
    batch_payloads[..k * v].fill(0);
    let mut seq = 0u64;

    macro_rules! flush {
        () => {
            flush_batch(
                mode,
                coefs,
                view,
                len_window,
                buffers,
                batch_docids,
                batch_payloads,
                v,
                k,
                norms,
                scores,
                heap,
                n,
                &mut seq,
            )?;
            batch_docids.clear();
            batch_payloads[..k * v].fill(0);
        };
    }

    if conjunctive {
        'outer: while let Some(mut target) = cursors[0].cur {
            let mut i = 1;
            while i < k {
                while let Some(d) = cursors[i].cur {
                    if d < target {
                        cursors[i].advance(doc_col, buffers, v)?;
                    } else {
                        break;
                    }
                }
                match cursors[i].cur {
                    None => break 'outer,
                    Some(d) if d == target => i += 1,
                    Some(d) => {
                        target = d;
                        i = 0;
                    }
                }
            }
            let j = batch_docids.len();
            batch_docids.push(target);
            for (i, c) in cursors.iter_mut().enumerate() {
                batch_payloads[i * v + j] = c.payload(pay_col, buffers, v)?;
                c.advance(doc_col, buffers, v)?;
            }
            if batch_docids.len() == v {
                flush!();
            }
        }
    } else {
        loop {
            let mut m: Option<u32> = None;
            for c in cursors.iter() {
                if let Some(d) = c.cur {
                    m = Some(match m {
                        None => d,
                        Some(x) => x.min(d),
                    });
                }
            }
            let Some(d) = m else { break };
            let j = batch_docids.len();
            batch_docids.push(d);
            for (i, c) in cursors.iter_mut().enumerate() {
                if c.cur == Some(d) {
                    batch_payloads[i * v + j] = c.payload(pay_col, buffers, v)?;
                    c.advance(doc_col, buffers, v)?;
                }
            }
            if batch_docids.len() == v {
                flush!();
            }
        }
    }
    flush!();
    Ok(seq)
}

/// Scores one assembled batch and offers every row to the heap.
#[allow(clippy::too_many_arguments)]
fn flush_batch(
    mode: ScoreMode,
    coefs: &[f32],
    view: &MetaView,
    len_window: &mut Window,
    buffers: &BufferManager,
    batch_docids: &[u32],
    batch_payloads: &[u32],
    v: usize,
    k: usize,
    norms: &mut Vec<f32>,
    scores: &mut Vec<f32>,
    heap: &mut Vec<HeapRow>,
    n: usize,
    seq: &mut u64,
) -> Result<(), ExecError> {
    let rows = batch_docids.len();
    if rows == 0 {
        return Ok(());
    }
    scores.clear();
    scores.resize(rows, 0.0);
    match mode {
        ScoreMode::Computed { c0, c1 } => {
            norms.clear();
            for &d in batch_docids {
                // Expression shape: c0 + c1 * cast_f32(gather(doclen)).
                norms.push(c0 + c1 * doc_len_f32(view, len_window, buffers, v, d)?);
            }
            for i in 0..k {
                score_computed(
                    scores,
                    &batch_payloads[i * v..i * v + rows],
                    coefs[i],
                    norms,
                    i == 0,
                );
            }
        }
        ScoreMode::MaterializedF32 | ScoreMode::MaterializedQ8 => {
            let f32_bits = matches!(mode, ScoreMode::MaterializedF32);
            for i in 0..k {
                score_materialized(
                    scores,
                    &batch_payloads[i * v..i * v + rows],
                    f32_bits,
                    i == 0,
                );
            }
        }
    }
    for (j, &d) in batch_docids.iter().enumerate() {
        *seq += 1;
        heap_offer(
            heap,
            n,
            HeapRow {
                score: scores[j],
                seq: *seq,
                docid: d,
            },
        );
    }
    Ok(())
}

/// Sorts the heap's retained rows (descending score, ascending arrival)
/// and appends them to `out`, leaving the heap cleared.
fn drain_heap(heap: &mut Vec<HeapRow>, out: &mut Vec<(u32, f32)>) {
    heap.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.seq.cmp(&b.seq)));
    out.extend(heap.iter().map(|r| (r.docid, r.score)));
    heap.clear();
}

// ---- scoring kernels ----------------------------------------------------

/// One term's contribution to the batch: `acc[j] (op)= coef * (tf / (tf +
/// norm[j]))` with `tf = cast_f32(payload as i32)`, where `(op)=` is plain
/// assignment for the first term (the fold has no zero seed). Dispatches
/// to the AVX2 kernel when active; both paths are IEEE-exact per element,
/// hence bit-identical.
fn score_computed(acc: &mut [f32], tfs: &[u32], coef: f32, norms: &[f32], first: bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x100_compress::simd_active() {
        // Safety: `simd_active` implies AVX2 was detected at runtime.
        unsafe { simd::score_computed_avx2(acc, tfs, coef, norms, first) };
        return;
    }
    score_computed_scalar(acc, tfs, coef, norms, first);
}

fn score_computed_scalar(acc: &mut [f32], tfs: &[u32], coef: f32, norms: &[f32], first: bool) {
    for j in 0..acc.len() {
        let tf = (tfs[j] as i32) as f32;
        let ts = coef * (tf / (tf + norms[j]));
        if first {
            acc[j] = ts;
        } else {
            acc[j] += ts;
        }
    }
}

/// One materialized term's contribution: the payload decoded as the plan
/// decodes it (`f32::from_bits` for F32 indexes, `cast_f32` for quantized
/// codes), assigned for the first term and summed for the rest.
fn score_materialized(acc: &mut [f32], payloads: &[u32], f32_bits: bool, first: bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x100_compress::simd_active() {
        // Safety: `simd_active` implies AVX2 was detected at runtime.
        unsafe { simd::score_materialized_avx2(acc, payloads, f32_bits, first) };
        return;
    }
    score_materialized_scalar(acc, payloads, f32_bits, first);
}

fn score_materialized_scalar(acc: &mut [f32], payloads: &[u32], f32_bits: bool, first: bool) {
    for j in 0..acc.len() {
        let s = if f32_bits {
            f32::from_bits(payloads[j])
        } else {
            (payloads[j] as i32) as f32
        };
        if first {
            acc[j] = s;
        } else {
            acc[j] += s;
        }
    }
}

/// AVX2 scoring kernels: 8 candidate rows per iteration, scalar tail.
/// Every operation used — `cvtepi32_ps`, `div_ps`, `mul_ps`, `add_ps` —
/// is IEEE-exact, and multiplies/adds are kept separate (no FMA), so the
/// lanes compute bit-for-bit what the scalar loop computes.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn score_computed_avx2(
        acc: &mut [f32],
        tfs: &[u32],
        coef: f32,
        norms: &[f32],
        first: bool,
    ) {
        let n8 = acc.len() & !7;
        let c = _mm256_set1_ps(coef);
        let mut j = 0;
        while j < n8 {
            let tf = _mm256_cvtepi32_ps(_mm256_loadu_si256(tfs.as_ptr().add(j).cast()));
            let nm = _mm256_loadu_ps(norms.as_ptr().add(j));
            let ts = _mm256_mul_ps(c, _mm256_div_ps(tf, _mm256_add_ps(tf, nm)));
            let out = if first {
                ts
            } else {
                _mm256_add_ps(_mm256_loadu_ps(acc.as_ptr().add(j)), ts)
            };
            _mm256_storeu_ps(acc.as_mut_ptr().add(j), out);
            j += 8;
        }
        super::score_computed_scalar(&mut acc[n8..], &tfs[n8..], coef, &norms[n8..], first);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn score_materialized_avx2(
        acc: &mut [f32],
        payloads: &[u32],
        f32_bits: bool,
        first: bool,
    ) {
        let n8 = acc.len() & !7;
        let mut j = 0;
        while j < n8 {
            let raw = _mm256_loadu_si256(payloads.as_ptr().add(j).cast());
            let s = if f32_bits {
                _mm256_castsi256_ps(raw)
            } else {
                _mm256_cvtepi32_ps(raw)
            };
            let out = if first {
                s
            } else {
                _mm256_add_ps(_mm256_loadu_ps(acc.as_ptr().add(j)), s)
            };
            _mm256_storeu_ps(acc.as_mut_ptr().add(j), out);
            j += 8;
        }
        super::score_materialized_scalar(&mut acc[n8..], &payloads[n8..], f32_bits, first);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_replicates_ieee_cheap_reject_on_signed_zero() {
        // A -0.0 incumbent at the root must survive a +0.0 challenger:
        // IEEE `0.0 <= -0.0` is true, so TopN cheap-rejects — even though
        // total_cmp says +0.0 > -0.0. Sort-then-truncate would differ.
        let mut heap = Vec::new();
        heap_offer(
            &mut heap,
            1,
            HeapRow {
                score: -0.0,
                seq: 1,
                docid: 7,
            },
        );
        heap_offer(
            &mut heap,
            1,
            HeapRow {
                score: 0.0,
                seq: 2,
                docid: 9,
            },
        );
        assert_eq!(heap.len(), 1);
        assert_eq!(heap[0].docid, 7, "+0.0 must not displace a -0.0 incumbent");
    }

    #[test]
    fn heap_keeps_earliest_arrivals_on_ties() {
        let mut heap = Vec::new();
        for seq in 1..=5 {
            heap_offer(
                &mut heap,
                2,
                HeapRow {
                    score: 1.0,
                    seq,
                    docid: seq as u32,
                },
            );
        }
        let mut out = Vec::new();
        drain_heap(&mut heap, &mut out);
        assert_eq!(out, vec![(1, 1.0), (2, 1.0)], "ties keep first arrivals");
    }

    #[test]
    fn scalar_kernels_match_reference_fold() {
        let tfs = [3u32, 0, 17, 1, 0, 255, 42, 9, 2];
        let norms: Vec<f32> = (0..9).map(|i| 0.3 + i as f32 * 0.07).collect();
        let mut acc = vec![0.0f32; 9];
        score_computed_scalar(&mut acc, &tfs, -1.5, &norms, true);
        score_computed_scalar(&mut acc, &tfs, 2.25, &norms, false);
        for j in 0..9 {
            let tf = tfs[j] as f32;
            let expect = -1.5 * (tf / (tf + norms[j])) + 2.25 * (tf / (tf + norms[j]));
            assert_eq!(acc[j].to_bits(), expect.to_bits(), "row {j}");
        }
    }

    #[test]
    fn poison_then_default_reset_is_safe() {
        let mut s = QueryScratch::new();
        s.poison(0xDEAD_BEEF);
        s.poison(1); // twice: poisoning must not corrupt Vec invariants
        assert!(s.terms.capacity() >= s.terms.len());
    }
}
