//! Allocation-free fused query execution over a reusable scratch arena.
//!
//! The relational path ([`crate::QueryEngine::search`]) builds a fresh
//! operator tree per query — scans, joins, projections, TopN — each with
//! its own staging buffers. That is the right shape for demonstrating the
//! paper's plans, but a serving worker answering thousands of queries per
//! second spends a measurable slice of its time in the allocator, and
//! allocator traffic is exactly the kind of per-tuple overhead §2 of the
//! paper rails against.
//!
//! This module is the serving hot path: a [`QueryScratch`] owns every
//! buffer a query needs (posting-cursor windows, batch score arrays, the
//! top-k heap, term/coefficient tables), *cleared — not freed — between
//! queries*. After a warmup query has grown the buffers to their
//! steady-state sizes, executing a query performs **zero heap
//! allocations** (pinned by `tests/hot_path_allocs.rs`).
//!
//! Results are bit-identical to the relational path for all six
//! [`SearchStrategy`] rungs; `tests/scratch_differential.rs` holds the two
//! paths against each other property-style, including after deliberately
//! corrupting the scratch with [`QueryScratch::poison`]. The equivalence
//! rests on three replicated contracts:
//!
//! * **Scoring arithmetic** — the exact expression shape the relational
//!   plan evaluates (`coef * (tf / (tf + norm))` folded left-to-right,
//!   absent outer-join terms contributing `tf = 0`), in plain IEEE f32
//!   with no FMA contraction, so every intermediate rounds identically.
//! * **Top-k selection** — a replica of `TopN`'s bounded heap including
//!   its IEEE `score <= min` cheap-reject (*not* equivalent to
//!   sort-then-truncate when `+0.0`/`-0.0` tie at the boundary) and its
//!   arrival-order tie-break.
//! * **Buffer accounting** — cursors refill entry-point-aligned windows
//!   clamped to block boundaries and charge [`BufferManager::touch`] once
//!   per block entry, exactly like `ColumnScan`.
//!
//! When the `simd` feature is enabled and the CPU has AVX2, the per-term
//! scoring loop over each candidate batch runs 8 lanes wide; conversion
//! (`i32 -> f32`), divide, multiply and add are all IEEE-exact operations,
//! so the wide kernels are bit-identical to the scalar loop (pinned by
//! `tests/scratch_differential.rs` against the forced-scalar fallback).

use std::ops::Range;

use x100_compress::ENTRY_POINT_STRIDE;
use x100_exec::ExecError;
use x100_storage::{BufferManager, Column};

use crate::bm25::idf;
use crate::engine::SearchStrategy;
use crate::index::{InvertedIndex, Materialize, MetaView};

/// A staged window of one column: decompressed values covering
/// `[start, start + stage.len())`, plus the block the cursor currently
/// pins (charged to the buffer manager on entry, not on every refill).
///
/// The refill math mirrors `ColumnScan::refill` exactly: start at the
/// entry point at or below the read position, span enough strides to cover
/// one vector, clamp to the block end. Staying inside one block keeps
/// buffer accounting per block honest *and* keeps `Column::read_range` on
/// its single-block path, which decodes into the reused buffer without
/// allocating.
#[derive(Debug, Default)]
struct Window {
    stage: Vec<u32>,
    start: usize,
    pinned_block: Option<usize>,
    /// Lifetime count of 128-value strides decoded into the stage — the
    /// honest "decoded blocks" meter the pruning bench compares across
    /// execution modes. Counting strides rather than refill events keeps
    /// the meter comparable between the exhaustive path (few wide,
    /// `vector_size`-span refills) and the pruned path (many single-stride
    /// seek probes). Monotone; never cleared.
    refills: u64,
}

impl Window {
    /// Forgets staged data and the block pin, keeping the buffer capacity.
    fn invalidate(&mut self) {
        self.stage.clear();
        self.start = usize::MAX;
        self.pinned_block = None;
    }

    /// The value at absolute position `pos`, refilling the window if `pos`
    /// is not staged.
    fn value_at(
        &mut self,
        col: &Column,
        buffers: &BufferManager,
        vector_size: usize,
        pos: usize,
    ) -> Result<u32, ExecError> {
        // `start` may be the usize::MAX sentinel; wrapping keeps the
        // in-range check branchless and correct (a huge offset misses).
        let off = pos.wrapping_sub(self.start);
        if off < self.stage.len() {
            return Ok(self.stage[off]);
        }
        let aligned = pos - pos % ENTRY_POINT_STRIDE;
        let block_size = col.block_size();
        let block_idx = aligned / block_size;
        let block_end = ((block_idx + 1) * block_size).min(col.len());
        let want_end = (pos + vector_size)
            .next_multiple_of(ENTRY_POINT_STRIDE)
            .min(block_end);
        if self.pinned_block != Some(block_idx) {
            buffers.touch(col, block_idx);
            self.pinned_block = Some(block_idx);
        }
        col.read_range(aligned, want_end - aligned, &mut self.stage)
            .map_err(ExecError::from)?;
        self.start = aligned;
        self.refills += (want_end - aligned).div_ceil(ENTRY_POINT_STRIDE) as u64;
        Ok(self.stage[pos - aligned])
    }
}

/// A reusable cursor over one term's posting range in the TD table:
/// current docid plus lazily windowed access to the payload column.
#[derive(Debug, Default)]
struct TermCursor {
    /// Absolute TD row bounds of this term's postings.
    end: usize,
    /// Absolute TD row of the current posting.
    pos: usize,
    /// Current docid, `None` once the range is exhausted.
    cur: Option<u32>,
    doc: Window,
    pay: Window,
    /// Staged window over the block-max column (pruned mode only).
    bm: Window,
}

impl TermCursor {
    /// Re-aims the cursor at a term range, invalidating staged data (but
    /// keeping buffer capacity) and loading the first docid.
    fn reset(
        &mut self,
        range: Range<usize>,
        doc_col: &Column,
        buffers: &BufferManager,
        vector_size: usize,
    ) -> Result<(), ExecError> {
        self.pos = range.start;
        self.end = range.end;
        self.doc.invalidate();
        self.pay.invalidate();
        self.bm.invalidate();
        self.load(doc_col, buffers, vector_size)
    }

    fn load(
        &mut self,
        doc_col: &Column,
        buffers: &BufferManager,
        vector_size: usize,
    ) -> Result<(), ExecError> {
        self.cur = if self.pos < self.end {
            Some(self.doc.value_at(doc_col, buffers, vector_size, self.pos)?)
        } else {
            None
        };
        Ok(())
    }

    fn advance(
        &mut self,
        doc_col: &Column,
        buffers: &BufferManager,
        vector_size: usize,
    ) -> Result<(), ExecError> {
        self.pos += 1;
        self.load(doc_col, buffers, vector_size)
    }

    /// The payload (tf or materialized score code) of the current posting.
    fn payload(
        &mut self,
        pay_col: &Column,
        buffers: &BufferManager,
        vector_size: usize,
    ) -> Result<u32, ExecError> {
        self.pay.value_at(pay_col, buffers, vector_size, self.pos)
    }

    /// Positions the cursor at the first posting whose docid exceeds
    /// `target` (or is `>= target` when `exclusive` is false), galloping
    /// then binary-searching over the docid column with single-stride
    /// probes — O(log gap) stride decodes, never a sequential walk. A
    /// cursor already past the target does not move.
    fn seek(
        &mut self,
        target: u32,
        exclusive: bool,
        doc_col: &Column,
        buffers: &BufferManager,
        vector_size: usize,
    ) -> Result<(), ExecError> {
        let past = |d: u32| if exclusive { d > target } else { d >= target };
        let Some(d) = self.cur else { return Ok(()) };
        if past(d) {
            return Ok(());
        }
        // Gallop: docid at `lo` fails the predicate; find a probe that
        // passes (or the range end), doubling the step each round.
        let mut lo = self.pos;
        let mut hi = self.end;
        let mut step = 1usize;
        loop {
            let probe = lo + step;
            if probe >= self.end {
                break;
            }
            let pd = self.doc.value_at(doc_col, buffers, 1, probe)?;
            if past(pd) {
                hi = probe;
                break;
            }
            lo = probe;
            step *= 2;
        }
        // Binary search (lo, hi]: first position passing the predicate.
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let pd = self.doc.value_at(doc_col, buffers, 1, mid)?;
            if past(pd) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        self.pos = hi;
        self.load(doc_col, buffers, vector_size)
    }

    /// [`Self::seek`] for the pruned path: positions the cursor at the
    /// first posting passing the predicate, locating the destination
    /// stride by binary search over `stride_last` — this term's
    /// scratch-resident per-stride max docids, `stride_last[j]` covering
    /// global stride `first + j` — then decoding exactly that one stride
    /// and finishing against staged data. Zero posting decodes for every
    /// stride stepped over; the gallop in [`Self::seek`] instead decodes
    /// one stride per probe and thrashes the single-stride window.
    ///
    /// Soundness: docids ascend within a term, so an interior stride's
    /// global max docid *is* the term's last docid there. A stride
    /// straddling a term boundary mixes other terms' rows, which can only
    /// overstate the max — the search then lands at or before the true
    /// destination and the staged finish walks forward, costing at most
    /// one extra stride decode, never a missed posting.
    fn seek_pruned(
        &mut self,
        target: u32,
        exclusive: bool,
        stride_last: &[u32],
        first: usize,
        doc_col: &Column,
        buffers: &BufferManager,
    ) -> Result<(), ExecError> {
        let past = |d: u32| if exclusive { d > target } else { d >= target };
        let Some(d) = self.cur else { return Ok(()) };
        if past(d) {
            return Ok(());
        }
        let cur_stride = self.pos / ENTRY_POINT_STRIDE;
        let cur_hi = ((cur_stride + 1) * ENTRY_POINT_STRIDE).min(self.end);
        // The current stride is always staged (every cursor move ends in
        // `load`), so probing its last in-range docid is free.
        let (mut lo, mut hi);
        if past(self.doc.value_at(doc_col, buffers, 1, cur_hi - 1)?) {
            // Destination is inside the current, already-staged stride.
            lo = self.pos + 1;
            hi = cur_hi;
        } else {
            let tail_base = cur_stride - first + 1;
            let tail = &stride_last[tail_base.min(stride_last.len())..];
            // Interior maxima ascend and the final (possibly overstated)
            // entry dominates them, so partition_point applies.
            let j = tail.partition_point(|&m| !past(m));
            if j == tail.len() {
                // Even the last stride's (over)stated max fails: no
                // posting of this term passes.
                self.pos = self.end;
                return self.load(doc_col, buffers, 1);
            }
            let dest = first + tail_base + j;
            lo = dest * ENTRY_POINT_STRIDE;
            hi = ((dest + 1) * ENTRY_POINT_STRIDE).min(self.end);
        }
        // First passing position in [lo, hi); the first probe decodes the
        // destination stride, the rest are staged hits.
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if past(self.doc.value_at(doc_col, buffers, 1, mid)?) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        self.pos = lo;
        self.load(doc_col, buffers, 1)
    }

    /// The inflated impact upper bound of the cursor's current 128-value
    /// stride, read from the block-max column without touching the posting
    /// columns.
    fn stride_bound(
        &mut self,
        bm_col: &Column,
        buffers: &BufferManager,
        mode: ScoreMode,
        coef: f32,
    ) -> Result<f32, ExecError> {
        stride_bound_at(
            &mut self.bm,
            bm_col,
            buffers,
            self.pos / ENTRY_POINT_STRIDE,
            mode,
            coef,
        )
    }

    /// The last docid of this term's postings inside the cursor's current
    /// stride — every posting of this term with a docid at or below it
    /// lives in the current stride, so the stride bound covers them all.
    fn stride_last_docid(
        &mut self,
        doc_col: &Column,
        buffers: &BufferManager,
    ) -> Result<u32, ExecError> {
        let stride_end = (self.pos / ENTRY_POINT_STRIDE + 1) * ENTRY_POINT_STRIDE;
        let last = stride_end.min(self.end) - 1;
        self.doc.value_at(doc_col, buffers, 1, last)
    }
}

/// Multiplicative inflation applied to every computed stride bound so
/// floating-point rounding can never make a bound understate a score the
/// exhaustive path would retain. The scoring fold and the bound fold
/// evaluate the same shapes with per-operation relative error ≤ f32
/// epsilon (≈6e-8); 1e-3 dominates the accumulated discrepancy for any
/// plausible term count by several orders of magnitude, while costing a
/// negligible amount of extra (always-sound) scoring.
const BOUND_SLACK: f32 = 1.0 + 1e-3;

/// Decodes one block-max triplet and turns it into an inflated score upper
/// bound for the given mode. All skip comparisons are written `bound <=
/// theta`, so a NaN bound fails the comparison and the posting is scored —
/// corrupt metadata can cost speed, never results.
fn stride_bound_at(
    window: &mut Window,
    bm_col: &Column,
    buffers: &BufferManager,
    stride: usize,
    mode: ScoreMode,
    coef: f32,
) -> Result<f32, ExecError> {
    let e = stride * crate::columns::BLOCK_MAX_SLOTS;
    let max_tf = window.value_at(bm_col, buffers, ENTRY_POINT_STRIDE, e)?;
    let min_len = window.value_at(bm_col, buffers, ENTRY_POINT_STRIDE, e + 1)?;
    let max_pay = window.value_at(bm_col, buffers, ENTRY_POINT_STRIDE, e + 2)?;
    let bound = match mode {
        ScoreMode::Computed { c0, c1 } => {
            // Same expression shape the scoring kernel folds, evaluated at
            // the stride's most favorable posting: max tf, min doc length.
            let tf = (max_tf as i32) as f32;
            let norm = c0 + c1 * (min_len as i32) as f32;
            coef * (tf / (tf + norm))
        }
        // ω ≥ 0, so the stored max bits decode to the stride's max score.
        ScoreMode::MaterializedF32 => f32::from_bits(max_pay),
        // Q8 rows are scored as raw codes, so the max code is exact in
        // code space — quantization error cannot understate it.
        ScoreMode::MaterializedQ8 => (max_pay as i32) as f32,
    };
    Ok(bound * BOUND_SLACK)
}

/// One retained top-k row: replica of `TopN`'s `HeapRow`. `seq` is the
/// 1-based arrival index among all candidate rows; the heap order is
/// `(score ascending by total_cmp, then *later* arrival first)`, so the
/// root is the row the next better candidate displaces.
#[derive(Debug, Clone, Copy, Default)]
struct HeapRow {
    score: f32,
    seq: u64,
    docid: u32,
}

/// `TopN`'s `HeapRow` ordering: ascending score (total order), ties broken
/// so the *later* arrival compares smaller (and is evicted first).
fn row_lt(a: &HeapRow, b: &HeapRow) -> bool {
    a.score
        .total_cmp(&b.score)
        .then_with(|| b.seq.cmp(&a.seq))
        .is_lt()
}

fn sift_up(heap: &mut [HeapRow], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if row_lt(&heap[i], &heap[parent]) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn sift_down(heap: &mut [HeapRow], mut i: usize) {
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < heap.len() && row_lt(&heap[l], &heap[smallest]) {
            smallest = l;
        }
        if r < heap.len() && row_lt(&heap[r], &heap[smallest]) {
            smallest = r;
        }
        if smallest == i {
            return;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
}

/// Offers one candidate row to the bounded min-heap, replicating `TopN`
/// exactly: a full heap cheap-rejects on IEEE `score <= root.score` (ties
/// keep the incumbent — and `+0.0` does *not* displace a `-0.0` root,
/// although it is total-order greater); otherwise push, then evict the
/// total-order minimum.
fn heap_offer(heap: &mut Vec<HeapRow>, n: usize, row: HeapRow) {
    if n == 0 {
        return;
    }
    if heap.len() == n && row.score <= heap[0].score {
        return;
    }
    heap.push(row);
    let last = heap.len() - 1;
    sift_up(heap, last);
    if heap.len() > n {
        let last = heap.len() - 1;
        heap.swap(0, last);
        heap.pop();
        sift_down(heap, 0);
    }
}

/// How candidate batches are scored.
#[derive(Debug, Clone, Copy)]
enum ScoreMode {
    /// Equation-2 BM25 from tf and document length at query time.
    Computed {
        /// `k1 * (1 - b)` — the constant part of the length normalizer.
        c0: f32,
        /// `k1 * b / avg_doc_len` — the per-length part.
        c1: f32,
    },
    /// Materialized f32 scores stored bit-cast in the payload column.
    MaterializedF32,
    /// Materialized quantized codes summed as small floats.
    MaterializedQ8,
}

/// Owned, reusable per-worker scratch for the fused query path.
///
/// Grown on first use, cleared — never freed — between queries: steady
/// state executes without touching the allocator. Construction is cheap
/// (all buffers start empty); each serving worker owns one, typically
/// behind the executor's internal mutex.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Query terms after dropping unknown/empty ones (duplicates kept,
    /// matching the relational path).
    terms: Vec<u32>,
    /// Per-term `idf * (k1 + 1)` constants (computed-BM25 modes).
    coefs: Vec<f32>,
    cursors: Vec<TermCursor>,
    /// Candidate docids of the batch being assembled.
    batch_docids: Vec<u32>,
    /// Term-major payload matrix: `payloads[t * vector_size + j]` is term
    /// `t`'s payload for batch row `j`, 0 where the term is absent (the
    /// outer join's missing-side convention).
    batch_payloads: Vec<u32>,
    /// Per-row length normalizers for the batch.
    norms: Vec<f32>,
    /// Per-row accumulated scores for the batch.
    scores: Vec<f32>,
    /// The bounded top-k heap.
    heap: Vec<HeapRow>,
    /// Hit staging for callers that materialize full responses.
    pub(crate) hits: Vec<(u32, f32)>,
    /// Pinned block window over a paged index's term-offset column.
    off_window: Window,
    /// Pinned block window over a paged index's doc-freq column.
    freq_window: Window,
    /// Pinned block window over a paged index's doc-len column.
    len_window: Window,
    /// Per-term score upper bounds (pruned modes), original term order.
    sigma: Vec<f32>,
    /// Term positions sorted by ascending `sigma` (pruned modes).
    sorted_terms: Vec<u32>,
    /// `prefix_bounds[c]` bounds the score of any doc containing only the
    /// `c` smallest-σ terms; `prefix_bounds[0] == 0.0`.
    prefix_bounds: Vec<f32>,
    /// Flat per-term suffix-max stride bounds (pruned modes): entry `j` of
    /// term `i`'s span bounds what any posting in or after the `j`-th
    /// stride of that term's range can still contribute. NaN-sticky, so
    /// corrupt metadata widens bounds (fails open) rather than skipping.
    stride_bounds: Vec<f32>,
    /// Flat per-term *raw* (un-suffixed) stride bounds, parallel to
    /// `stride_bounds`: what a posting inside exactly that stride can
    /// contribute. Used to bound a specific candidate docid once its
    /// destination stride is known — strictly tighter than the suffix.
    stride_raw: Vec<f32>,
    /// Flat per-term stride max docids (pruned modes), parallel to
    /// `stride_bounds`: the block-max metadata's max-docid slot for each
    /// stride of each term's range. Lets [`TermCursor::seek_pruned`]
    /// locate a destination stride without decoding any posting block.
    stride_last: Vec<u32>,
    /// `k + 1` prefix offsets delimiting each term's span in
    /// `stride_bounds` and `stride_last`.
    stride_off: Vec<u32>,
    /// Lifetime count of rows offered to the scoring fold. Monotone.
    rows_scored: u64,
    /// Per-term document frequencies (conjunctive skipping path).
    dfs: Vec<u32>,
}

impl QueryScratch {
    /// An empty scratch; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Test hook: overwrites every buffer — staged column windows, batch
    /// arrays, heap, term tables, cursor positions and block pins — with
    /// garbage derived from `seed`. A subsequent query must produce
    /// bit-identical results anyway: correctness may depend only on state
    /// the query itself (re)initializes, never on leftovers.
    pub fn poison(&mut self, seed: u64) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        fn refill_u32(v: &mut Vec<u32>, next: &mut impl FnMut() -> u64) {
            let cap = v.capacity();
            v.clear();
            for _ in 0..cap {
                v.push(next() as u32);
            }
        }
        fn refill_f32(v: &mut Vec<f32>, next: &mut impl FnMut() -> u64) {
            let cap = v.capacity();
            v.clear();
            for _ in 0..cap {
                // Includes NaNs, infinities and negative zeros.
                v.push(f32::from_bits(next() as u32));
            }
        }
        refill_u32(&mut self.terms, &mut next);
        refill_f32(&mut self.coefs, &mut next);
        refill_u32(&mut self.batch_docids, &mut next);
        refill_u32(&mut self.batch_payloads, &mut next);
        refill_f32(&mut self.norms, &mut next);
        refill_f32(&mut self.scores, &mut next);
        let heap_cap = self.heap.capacity();
        self.heap.clear();
        for _ in 0..heap_cap {
            self.heap.push(HeapRow {
                score: f32::from_bits(next() as u32),
                seq: next(),
                docid: next() as u32,
            });
        }
        let hits_cap = self.hits.capacity();
        self.hits.clear();
        for _ in 0..hits_cap {
            self.hits
                .push((next() as u32, f32::from_bits(next() as u32)));
        }
        refill_f32(&mut self.sigma, &mut next);
        refill_f32(&mut self.prefix_bounds, &mut next);
        refill_f32(&mut self.stride_bounds, &mut next);
        refill_f32(&mut self.stride_raw, &mut next);
        refill_u32(&mut self.stride_last, &mut next);
        refill_u32(&mut self.stride_off, &mut next);
        refill_u32(&mut self.sorted_terms, &mut next);
        refill_u32(&mut self.dfs, &mut next);
        for c in &mut self.cursors {
            c.pos = next() as usize;
            c.end = next() as usize;
            c.cur = Some(next() as u32);
            for w in [&mut c.doc, &mut c.pay, &mut c.bm] {
                refill_u32(&mut w.stage, &mut next);
                w.start = next() as usize;
                w.pinned_block = Some(next() as usize);
            }
        }
        for w in [
            &mut self.off_window,
            &mut self.freq_window,
            &mut self.len_window,
        ] {
            refill_u32(&mut w.stage, &mut next);
            w.start = next() as usize;
            w.pinned_block = Some(next() as usize);
        }
    }

    /// Cumulative hot-path work counters since this scratch was created.
    /// Both meters are monotone; callers diff two snapshots to attribute
    /// work to a span of queries.
    pub fn hot_stats(&self) -> HotPathStats {
        let mut refills =
            self.off_window.refills + self.freq_window.refills + self.len_window.refills;
        for c in &self.cursors {
            refills += c.doc.refills + c.pay.refills + c.bm.refills;
        }
        HotPathStats {
            window_refills: refills,
            rows_scored: self.rows_scored,
        }
    }
}

/// Cumulative work counters for one scratch arena: `window_refills` counts
/// 128-value strides decoded into column windows (a wide exhaustive refill
/// of `vector_size` values counts every stride it spans; a single-stride
/// seek probe counts one) and `rows_scored` counts candidate rows pushed
/// through the scoring fold. The pruning bench reports the
/// pruned/exhaustive ratio of both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotPathStats {
    pub window_refills: u64,
    pub rows_scored: u64,
}

/// A pool of [`QueryScratch`] arenas for callers serving one shared
/// resource (e.g. a cluster node) from many threads at once.
///
/// [`Self::acquire`] pops a warmed arena or hands out a fresh empty one —
/// constructing an empty scratch does not allocate; its buffers grow
/// during the query it serves — and [`Self::release`] returns it. The
/// pool's high-water mark is the peak concurrency it ever saw, after
/// which acquire/release cycles are two short mutex sections and zero
/// heap traffic. Unlike a single mutex-guarded arena, concurrent queries
/// never serialize on each other: each gets its own arena.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: std::sync::Mutex<Vec<QueryScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops a pooled arena, or a fresh empty one when all are in use.
    pub fn acquire(&self) -> QueryScratch {
        self.pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    /// Returns an arena to the pool for the next query.
    pub fn release(&self, scratch: QueryScratch) {
        self.pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(scratch);
    }
}

/// A term's TD row range through the metadata view: a slice index for a
/// built index, two windowed reads of the paged offset column for a
/// reopened segment (clamped like the old open-time validation clamped).
fn term_range_of(
    view: &MetaView,
    window: &mut Window,
    buffers: &BufferManager,
    vector_size: usize,
    term: u32,
) -> Result<Range<usize>, ExecError> {
    match view {
        MetaView::Mem { term_ranges, .. } => {
            Ok(term_ranges.get(term as usize).cloned().unwrap_or(0..0))
        }
        MetaView::Paged {
            offsets,
            num_postings,
            num_terms,
            ..
        } => {
            let t = term as usize;
            if t >= *num_terms {
                return Ok(0..0);
            }
            let start = window.value_at(offsets, buffers, vector_size, t)? as usize;
            let end = (window.value_at(offsets, buffers, vector_size, t + 1)? as usize)
                .min(*num_postings);
            Ok(if start > end { 0..0 } else { start..end })
        }
    }
}

/// A term's document frequency through the metadata view.
fn doc_freq_of(
    view: &MetaView,
    window: &mut Window,
    buffers: &BufferManager,
    vector_size: usize,
    term: u32,
) -> Result<u32, ExecError> {
    match view {
        MetaView::Mem { doc_freqs, .. } => Ok(doc_freqs.get(term as usize).copied().unwrap_or(0)),
        MetaView::Paged {
            doc_freqs,
            num_terms,
            ..
        } => {
            if term as usize >= *num_terms {
                return Ok(0);
            }
            window.value_at(doc_freqs, buffers, vector_size, term as usize)
        }
    }
}

/// A document's length as f32 through the metadata view. Lengths are
/// non-negative, so the paged u32 read casts to the same f32 bits the
/// dense `i32 as f32` cast produces.
fn doc_len_f32(
    view: &MetaView,
    window: &mut Window,
    buffers: &BufferManager,
    vector_size: usize,
    docid: u32,
) -> Result<f32, ExecError> {
    match view {
        MetaView::Mem { doc_lens, .. } => Ok(doc_lens[docid as usize] as f32),
        MetaView::Paged { doc_lens, .. } => {
            Ok(window.value_at(doc_lens, buffers, vector_size, docid as usize)? as f32)
        }
    }
}

/// A document's length as u32 through the metadata view (lengths are
/// non-negative).
fn doc_len_u32(
    view: &MetaView,
    window: &mut Window,
    buffers: &BufferManager,
    vector_size: usize,
    docid: u32,
) -> Result<u32, ExecError> {
    match view {
        MetaView::Mem { doc_lens, .. } => Ok(doc_lens[docid as usize] as u32),
        MetaView::Paged { doc_lens, .. } => {
            window.value_at(doc_lens, buffers, vector_size, docid as usize)
        }
    }
}

/// Conjunctive BM25 retrieval by galloping leapfrog intersection over the
/// scratch arena's term cursors — the skipping access path of
/// [`crate::QueryEngine::search_conjunctive_skipping`] with zero per-query
/// heap allocations in steady state (pinned by `tests/hot_path_allocs.rs`).
///
/// Matches are scored with the reference per-posting fold
/// ([`crate::bm25::term_weight`] summed in term order) and ranked through
/// the bounded heap; candidates arrive in ascending docid order, so the
/// heap's arrival tie-break reproduces the docid tie-break of the sorting
/// implementation this replaces.
pub(crate) fn conjunctive_skipping_into(
    index: &InvertedIndex,
    buffers: &BufferManager,
    vector_size: usize,
    term_ids: &[u32],
    n: usize,
    scratch: &mut QueryScratch,
    out: &mut Vec<(u32, f32)>,
) -> Result<(), ExecError> {
    out.clear();
    let view = index.meta_view();
    scratch.terms.clear();
    for &t in term_ids {
        let range = term_range_of(&view, &mut scratch.off_window, buffers, vector_size, t)?;
        if !range.is_empty() {
            scratch.terms.push(t);
        }
    }
    let k = scratch.terms.len();
    if k == 0 {
        return Ok(());
    }
    while scratch.cursors.len() < k {
        scratch.cursors.push(TermCursor::default());
    }
    let td = index.td();
    let doc_col = td.column("docid").map_err(ExecError::from)?;
    let tf_col = td.column("tf").map_err(ExecError::from)?;
    scratch.dfs.clear();
    for i in 0..k {
        let t = scratch.terms[i];
        let df = doc_freq_of(&view, &mut scratch.freq_window, buffers, vector_size, t)?;
        scratch.dfs.push(df);
    }
    reset_cursors(&view, buffers, vector_size, scratch, doc_col)?;

    let QueryScratch {
        cursors,
        heap,
        len_window,
        dfs,
        ..
    } = scratch;
    let cursors = &mut cursors[..k];
    let v = vector_size;
    let params = index.config().params;
    let stats = index.stats();
    heap.clear();
    let mut seq = 0u64;
    'outer: while let Some(mut target) = cursors[0].cur {
        // Leapfrog with galloping seeks: the laggard jumps to the current
        // target in O(log gap) stride probes instead of walking postings.
        let mut i = 1;
        while i < k {
            cursors[i].seek(target, false, doc_col, buffers, v)?;
            match cursors[i].cur {
                None => break 'outer,
                Some(d) if d == target => i += 1,
                Some(d) => {
                    target = d;
                    i = 0;
                }
            }
        }
        let doc_len = doc_len_u32(&view, len_window, buffers, v, target)?;
        let mut score = 0.0f32;
        for (i, c) in cursors.iter_mut().enumerate() {
            let tf = c.payload(tf_col, buffers, v)?;
            score += crate::bm25::term_weight(params, stats, dfs[i], tf, doc_len);
            c.advance(doc_col, buffers, v)?;
        }
        heap_offer(
            heap,
            n,
            HeapRow {
                score,
                seq,
                docid: target,
            },
        );
        seq += 1;
    }
    scratch.rows_scored += seq;
    drain_heap(&mut scratch.heap, out);
    out.truncate(n);
    Ok(())
}

/// Runs one query through the fused path, appending up to `n`
/// `(docid, score)` hits to `out` (cleared first), best first. Returns the
/// number of passes (2 only when a two-pass strategy fell through to the
/// disjunctive plan). Bit-identical to [`crate::QueryEngine::search`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn search_into(
    index: &InvertedIndex,
    buffers: &BufferManager,
    vector_size: usize,
    term_ids: &[u32],
    strategy: SearchStrategy,
    n: usize,
    scratch: &mut QueryScratch,
    out: &mut Vec<(u32, f32)>,
) -> Result<u8, ExecError> {
    out.clear();
    if strategy.needs_materialized() && !index.has_materialized_scores() {
        return Err(ExecError::Plan(
            "strategy requires a materialized score column; build the index \
             with Materialize::F32 or Materialize::Quantized8"
                .into(),
        ));
    }
    let view = index.meta_view();
    scratch.terms.clear();
    for &t in term_ids {
        let range = term_range_of(&view, &mut scratch.off_window, buffers, vector_size, t)?;
        if !range.is_empty() {
            scratch.terms.push(t);
        }
    }
    let k = scratch.terms.len();
    if k == 0 {
        return Ok(1);
    }
    while scratch.cursors.len() < k {
        scratch.cursors.push(TermCursor::default());
    }

    let td = index.td();
    let doc_col = td.column("docid").map_err(ExecError::from)?;
    let mut passes = 1u8;
    match strategy {
        SearchStrategy::BoolAnd | SearchStrategy::BoolOr => {
            reset_cursors(&view, buffers, vector_size, scratch, doc_col)?;
            run_boolean(
                buffers,
                vector_size,
                doc_col,
                &mut scratch.cursors[..k],
                strategy == SearchStrategy::BoolAnd,
                n,
                out,
            )?;
        }
        SearchStrategy::Bm25Pruned | SearchStrategy::Bm25MaterializedPruned
            if index.block_max().is_some() =>
        {
            let materialized = strategy.needs_materialized();
            let mode = score_mode(index, &view, buffers, vector_size, scratch, materialized)?;
            let pay_col = td
                .column(if materialized { "score" } else { "tf" })
                .map_err(ExecError::from)?;
            let bm_col = index.block_max().expect("guard checked block_max");
            // Stride-granular cursor windows: the pruned walk jumps, so
            // staging `vector_size`-wide spans would decode strides the
            // skip logic is about to step over. Narrow windows make
            // "decoded blocks" track exactly the strides examined.
            reset_cursors(&view, buffers, 1, scratch, doc_col)?;
            let scored = run_pruned(
                &view,
                buffers,
                vector_size,
                doc_col,
                pay_col,
                bm_col,
                scratch,
                mode,
                n,
            )?;
            scratch.rows_scored += scored;
            drain_heap(&mut scratch.heap, out);
        }
        // Ranked strategies without pruning — and pruned strategies on an
        // index that carries no block-max section (pre-pruning segments):
        // those fall back to the exhaustive single-pass disjunctive plan,
        // which is the path pruning must match bit for bit anyway.
        _ => {
            let materialized = strategy.needs_materialized();
            let mode = score_mode(index, &view, buffers, vector_size, scratch, materialized)?;
            let pay_col = td
                .column(if materialized { "score" } else { "tf" })
                .map_err(ExecError::from)?;
            let two_pass = strategy.is_two_pass();
            // Single-pass strategies run the disjunctive plan directly;
            // two-pass tries conjunctive first (§3.3).
            reset_cursors(&view, buffers, vector_size, scratch, doc_col)?;
            let matched = run_ranked(
                &view,
                buffers,
                vector_size,
                doc_col,
                pay_col,
                scratch,
                mode,
                two_pass,
                n,
            )?;
            scratch.rows_scored += matched;
            if two_pass && (matched as usize) < n && k > 1 {
                passes = 2;
                reset_cursors(&view, buffers, vector_size, scratch, doc_col)?;
                let matched = run_ranked(
                    &view,
                    buffers,
                    vector_size,
                    doc_col,
                    pay_col,
                    scratch,
                    mode,
                    false,
                    n,
                )?;
                scratch.rows_scored += matched;
            }
            drain_heap(&mut scratch.heap, out);
        }
    }
    out.truncate(n);
    Ok(passes)
}

/// Re-aims the first `terms.len()` cursors at their term ranges.
fn reset_cursors(
    view: &MetaView,
    buffers: &BufferManager,
    vector_size: usize,
    scratch: &mut QueryScratch,
    doc_col: &Column,
) -> Result<(), ExecError> {
    let QueryScratch {
        terms,
        cursors,
        off_window,
        ..
    } = scratch;
    for (i, &t) in terms.iter().enumerate() {
        let range = term_range_of(view, off_window, buffers, vector_size, t)?;
        cursors[i].reset(range, doc_col, buffers, vector_size)?;
    }
    Ok(())
}

/// Resolves the scoring mode, filling per-term coefficients for the
/// computed variant (folded into the plan as constants relationally).
fn score_mode(
    index: &InvertedIndex,
    view: &MetaView,
    buffers: &BufferManager,
    vector_size: usize,
    scratch: &mut QueryScratch,
    materialized: bool,
) -> Result<ScoreMode, ExecError> {
    if materialized {
        return Ok(match index.config().materialize {
            Materialize::F32 => ScoreMode::MaterializedF32,
            Materialize::Quantized8 | Materialize::None => ScoreMode::MaterializedQ8,
        });
    }
    let params = index.config().params;
    let stats = index.stats();
    let QueryScratch {
        terms,
        coefs,
        freq_window,
        ..
    } = scratch;
    coefs.clear();
    for &t in terms.iter() {
        let df = doc_freq_of(view, freq_window, buffers, vector_size, t)?;
        coefs.push(idf(stats.num_docs, df) * (params.k1 + 1.0));
    }
    Ok(ScoreMode::Computed {
        c0: params.k1 * (1.0 - params.b),
        c1: params.k1 * params.b / stats.avg_doc_len,
    })
}

/// Unranked boolean retrieval: k-way docid merge (intersection or union),
/// emitting `(docid, 0.0)` in docid order with the relational path's
/// early exit after `n` hits.
fn run_boolean(
    buffers: &BufferManager,
    vector_size: usize,
    doc_col: &Column,
    cursors: &mut [TermCursor],
    conjunctive: bool,
    n: usize,
    out: &mut Vec<(u32, f32)>,
) -> Result<(), ExecError> {
    if conjunctive {
        'outer: while let Some(mut target) = cursors[0].cur {
            let mut i = 1;
            while i < cursors.len() {
                while let Some(d) = cursors[i].cur {
                    if d < target {
                        cursors[i].advance(doc_col, buffers, vector_size)?;
                    } else {
                        break;
                    }
                }
                match cursors[i].cur {
                    None => break 'outer,
                    Some(d) if d == target => i += 1,
                    Some(d) => {
                        target = d;
                        i = 0;
                    }
                }
            }
            out.push((target, 0.0));
            if out.len() >= n {
                break;
            }
            for c in cursors.iter_mut() {
                c.advance(doc_col, buffers, vector_size)?;
            }
        }
    } else {
        loop {
            let mut m: Option<u32> = None;
            for c in cursors.iter() {
                if let Some(d) = c.cur {
                    m = Some(match m {
                        None => d,
                        Some(x) => x.min(d),
                    });
                }
            }
            let Some(d) = m else { break };
            for c in cursors.iter_mut() {
                if c.cur == Some(d) {
                    c.advance(doc_col, buffers, vector_size)?;
                }
            }
            out.push((d, 0.0));
            if out.len() >= n {
                break;
            }
        }
    }
    Ok(())
}

/// Ranked retrieval: merges candidate docs (union or intersection) into
/// batches of `vector_size`, scores each batch with the wide-or-scalar
/// kernels, and offers every row to the top-k heap. Returns the total
/// candidate count (the two-pass quota check).
#[allow(clippy::too_many_arguments)]
fn run_ranked(
    view: &MetaView,
    buffers: &BufferManager,
    vector_size: usize,
    doc_col: &Column,
    pay_col: &Column,
    scratch: &mut QueryScratch,
    mode: ScoreMode,
    conjunctive: bool,
    n: usize,
) -> Result<u64, ExecError> {
    let QueryScratch {
        terms,
        coefs,
        cursors,
        batch_docids,
        batch_payloads,
        norms,
        scores,
        heap,
        len_window,
        ..
    } = scratch;
    let k = terms.len();
    let cursors = &mut cursors[..k];
    let v = vector_size;
    heap.clear();
    batch_docids.clear();
    if batch_payloads.len() < k * v {
        batch_payloads.resize(k * v, 0);
    }
    batch_payloads[..k * v].fill(0);
    let mut seq = 0u64;

    macro_rules! flush {
        () => {
            flush_batch(
                mode,
                coefs,
                view,
                len_window,
                buffers,
                batch_docids,
                batch_payloads,
                v,
                k,
                norms,
                scores,
                heap,
                n,
                &mut seq,
            )?;
            batch_docids.clear();
            batch_payloads[..k * v].fill(0);
        };
    }

    if conjunctive {
        'outer: while let Some(mut target) = cursors[0].cur {
            let mut i = 1;
            while i < k {
                while let Some(d) = cursors[i].cur {
                    if d < target {
                        cursors[i].advance(doc_col, buffers, v)?;
                    } else {
                        break;
                    }
                }
                match cursors[i].cur {
                    None => break 'outer,
                    Some(d) if d == target => i += 1,
                    Some(d) => {
                        target = d;
                        i = 0;
                    }
                }
            }
            let j = batch_docids.len();
            batch_docids.push(target);
            for (i, c) in cursors.iter_mut().enumerate() {
                batch_payloads[i * v + j] = c.payload(pay_col, buffers, v)?;
                c.advance(doc_col, buffers, v)?;
            }
            if batch_docids.len() == v {
                flush!();
            }
        }
    } else {
        loop {
            let mut m: Option<u32> = None;
            for c in cursors.iter() {
                if let Some(d) = c.cur {
                    m = Some(match m {
                        None => d,
                        Some(x) => x.min(d),
                    });
                }
            }
            let Some(d) = m else { break };
            let j = batch_docids.len();
            batch_docids.push(d);
            for (i, c) in cursors.iter_mut().enumerate() {
                if c.cur == Some(d) {
                    batch_payloads[i * v + j] = c.payload(pay_col, buffers, v)?;
                    c.advance(doc_col, buffers, v)?;
                }
            }
            if batch_docids.len() == v {
                flush!();
            }
        }
    }
    flush!();
    Ok(seq)
}

/// Block-max pruned disjunctive top-k: MaxScore essential/non-essential
/// partitioning refined per candidate with 128-value stride bounds, with
/// whole-stride skips that never decode the postings they step over.
///
/// Bit-identity with the exhaustive disjunctive plan rests on one
/// invariant: a candidate is skipped only when its inflated upper bound is
/// `<= theta`, where `theta` is the heap root with the heap full — exactly
/// the exhaustive path's cheap-reject condition, which never mutates the
/// heap. Skipped rows therefore change nothing, survivors are scored by
/// the unchanged [`flush_batch`] fold in ascending-docid order, and the
/// drain tie-breaks see the same relative arrival order. `theta` is stale
/// between flushes (it only rises), so staleness is conservative, and a
/// NaN bound fails every `<=` comparison, so corrupt metadata degrades to
/// exhaustive scoring rather than wrong results.
///
/// Terms sorted by ascending per-term bound σ split into a non-essential
/// prefix (sum of bounds `<= theta` — docs containing only those terms
/// cannot enter the heap) and an essential rest that drives the candidate
/// min-merge; for few-term queries the partition stays empty and the loop
/// degenerates to a block-max WAND pivot walk over all cursors.
#[allow(clippy::too_many_arguments)]
fn run_pruned(
    view: &MetaView,
    buffers: &BufferManager,
    vector_size: usize,
    doc_col: &Column,
    pay_col: &Column,
    bm_col: &Column,
    scratch: &mut QueryScratch,
    mode: ScoreMode,
    n: usize,
) -> Result<u64, ExecError> {
    let QueryScratch {
        terms,
        coefs,
        cursors,
        batch_docids,
        batch_payloads,
        norms,
        scores,
        heap,
        len_window,
        sigma,
        sorted_terms,
        prefix_bounds,
        stride_bounds,
        stride_raw,
        stride_last,
        stride_off,
        ..
    } = scratch;
    let k = terms.len();
    let cursors = &mut cursors[..k];
    let v = vector_size;
    heap.clear();
    batch_docids.clear();
    if batch_payloads.len() < k * v {
        batch_payloads.resize(k * v, 0);
    }
    batch_payloads[..k * v].fill(0);
    let mut seq = 0u64;
    let coef_of = |i: usize| match mode {
        ScoreMode::Computed { .. } => coefs[i],
        _ => 0.0,
    };

    // Per-term block-max scan — O(range / 128), no posting decodes: one
    // pass over the metadata fills each term's **suffix-max** stride
    // bounds (entry j bounds what any posting in or after the j-th stride
    // of the range can still contribute; cursors only move forward, so a
    // lagging cursor's residual potential is exactly its suffix). σ is
    // the suffix at the range start: the term's whole-range bound.
    sigma.clear();
    stride_bounds.clear();
    stride_raw.clear();
    stride_last.clear();
    stride_off.clear();
    stride_off.push(0);
    for (i, c) in cursors.iter_mut().enumerate() {
        let coef = coef_of(i);
        let last = (c.end - 1) / ENTRY_POINT_STRIDE;
        let base = stride_bounds.len();
        for s in c.pos / ENTRY_POINT_STRIDE..=last {
            let b = stride_bound_at(&mut c.bm, bm_col, buffers, s, mode, coef)?;
            stride_raw.push(b);
            stride_bounds.push(b);
            // The max-docid slot rides the same staged metadata window.
            let e = s * crate::columns::BLOCK_MAX_SLOTS + 3;
            stride_last.push(c.bm.value_at(bm_col, buffers, ENTRY_POINT_STRIDE, e)?);
        }
        // Suffix-max in place, NaN-sticky: a NaN bound (corrupt metadata)
        // poisons every suffix through it, so the affected span is scored
        // rather than skipped.
        let mut suffix = 0.0f32;
        for b in stride_bounds[base..].iter_mut().rev() {
            suffix = if b.is_nan() || suffix.is_nan() {
                f32::NAN
            } else if *b > suffix {
                *b
            } else {
                suffix
            };
            *b = suffix;
        }
        sigma.push(stride_bounds[base]);
        stride_off.push(stride_bounds.len() as u32);
    }
    sorted_terms.clear();
    sorted_terms.extend(0..k as u32);
    sorted_terms.sort_unstable_by(|&a, &b| sigma[a as usize].total_cmp(&sigma[b as usize]));
    prefix_bounds.clear();
    prefix_bounds.push(0.0);
    for i in 0..k {
        let p = prefix_bounds[i] + sigma[sorted_terms[i] as usize];
        prefix_bounds.push(p);
    }
    // Terms at sorted positions < ness are non-essential. Monotone: theta
    // only rises, so the partition point only moves right.
    let mut ness = 0usize;
    // Theta is read from the heap, and the heap only learns about
    // survivors at flush time — a full `v`-row batch would leave theta
    // stale (or absent) across hundreds of candidates, letting every one
    // of them survive and decode-probe every list before the heap ever
    // fills. Flushing pruned batches eagerly keeps theta live; survivors
    // are rare once it is, so the smaller batches cost the vectorized
    // kernels almost nothing. Scoring is row-independent and `seq` runs
    // in candidate order either way, so results are batch-size-blind.
    let flush_at = v.min(ENTRY_POINT_STRIDE);

    macro_rules! flush {
        () => {
            flush_batch(
                mode,
                coefs,
                view,
                len_window,
                buffers,
                batch_docids,
                batch_payloads,
                v,
                k,
                norms,
                scores,
                heap,
                n,
                &mut seq,
            )?;
            batch_docids.clear();
            batch_payloads[..k * v].fill(0);
        };
    }

    loop {
        let theta = (n > 0 && heap.len() == n).then(|| heap[0].score);
        if let Some(t) = theta {
            while ness < k && prefix_bounds[ness + 1] <= t {
                ness += 1;
            }
        }
        if ness == k {
            // Every remaining doc is bounded by prefix_bounds[k] <= theta.
            break;
        }
        // Next candidate: min docid across essential cursors.
        let mut cand: Option<u32> = None;
        for &si in &sorted_terms[ness..] {
            if let Some(d) = cursors[si as usize].cur {
                cand = Some(match cand {
                    None => d,
                    Some(x) => x.min(d),
                });
            }
        }
        let Some(d) = cand else { break };
        if let Some(t) = theta {
            // Stage one — stride metadata only, no posting decodes: each
            // live non-essential cursor's suffix bound from its current
            // stride onward (sound because cursors only move forward —
            // every posting of the term with a docid at or past the last
            // probed target sits at or past the cursor; exhausted cursors
            // contribute nothing) plus the stride bounds of the essential
            // cursors sitting at `d`. Strictly tighter than the static σ
            // prefix, which pays for whole ranges forever.
            let mut nonness = 0.0f32;
            for &si in &sorted_terms[..ness] {
                let c = &cursors[si as usize];
                if c.cur.is_some() {
                    nonness += suffix_bound(stride_off, stride_bounds, si as usize, c);
                }
            }
            let mut bound = nonness;
            for &si in &sorted_terms[ness..] {
                let c = &mut cursors[si as usize];
                if c.cur == Some(d) {
                    bound += c.stride_bound(bm_col, buffers, mode, coef_of(si as usize))?;
                }
            }
            if bound <= t {
                // Nothing in these cursors' current strides can beat
                // theta; docs past `target` may involve other postings,
                // so the jump stops at the earliest of the covered
                // strides' last docids and the next essential docid.
                let mut target = u32::MAX;
                for &si in &sorted_terms[ness..] {
                    let c = &mut cursors[si as usize];
                    match c.cur {
                        Some(cd) if cd == d => {
                            target = target.min(c.stride_last_docid(doc_col, buffers)?);
                        }
                        Some(cd) => target = target.min(cd - 1),
                        None => {}
                    }
                }
                for &si in &sorted_terms[ness..] {
                    let c = &mut cursors[si as usize];
                    if c.cur == Some(d) {
                        let (span, first) = term_span(stride_off, stride_last, si as usize, c);
                        c.seek_pruned(target, true, span, first, doc_col, buffers)?;
                    }
                }
                continue;
            }
            // Stage two — the stride bound alone could not reject `d`:
            // replace the essential stride bounds with the candidate's
            // *exact* essential partial score (the essential cursors sit
            // at `d` with their strides staged, so the payload probes are
            // cheap), then pull in non-essential cursors one at a time in
            // descending-σ order, re-checking after each. Most candidates
            // die before any low-σ cursor — typically the longest lists —
            // is ever seeked, which is where the decoded-block savings
            // come from.
            let norm = match mode {
                ScoreMode::Computed { c0, c1 } => {
                    c0 + c1 * doc_len_f32(view, len_window, buffers, v, d)?
                }
                _ => 0.0,
            };
            let mut partial = 0.0f32;
            for &si in &sorted_terms[ness..] {
                let c = &mut cursors[si as usize];
                if c.cur == Some(d) {
                    let pay = c.payload(pay_col, buffers, 1)?;
                    partial += contribution(mode, coef_of(si as usize), pay, norm);
                }
            }
            let mut probed = ness;
            let reject = loop {
                // Recompute (never decrement — cancellation could
                // understate) the unprobed remainder each round: ≤ k
                // stride-table lookups, no posting decodes. Each term is
                // bounded by the raw bound of the one stride that can
                // hold `d` — or exactly zero once its cursor has passed
                // `d` — which is what lets most candidates die without
                // the long low-σ lists ever being seeked.
                let mut remaining = 0.0f32;
                for &sj in &sorted_terms[..probed] {
                    remaining += bound_at(
                        stride_off,
                        stride_raw,
                        stride_last,
                        sj as usize,
                        &mut cursors[sj as usize],
                        d,
                        doc_col,
                        buffers,
                    )?;
                }
                // NaN (corrupt metadata) fails the comparison: scored,
                // never skipped.
                if partial * BOUND_SLACK + remaining <= t {
                    break true;
                }
                if probed == 0 {
                    break false;
                }
                probed -= 1;
                let si = sorted_terms[probed] as usize;
                let (span, first) = term_span(stride_off, stride_last, si, &cursors[si]);
                let c = &mut cursors[si];
                c.seek_pruned(d, false, span, first, doc_col, buffers)?;
                if c.cur == Some(d) {
                    let pay = c.payload(pay_col, buffers, 1)?;
                    partial += contribution(mode, coef_of(si), pay, norm);
                }
            };
            if reject {
                // `d` provably cannot beat the heap floor; step the
                // essential cursors off it and move on. Probed
                // non-essential cursors stay where the probe left them —
                // forward-only, so their suffix bounds remain sound.
                for &si in &sorted_terms[ness..] {
                    let c = &mut cursors[si as usize];
                    if c.cur == Some(d) {
                        c.advance(doc_col, buffers, 1)?;
                    }
                }
                continue;
            }
        }
        // Survivor: assemble one exact batch row over all k terms in the
        // original term order, probing every cursor (absent terms keep
        // payload 0 — the outer join's missing-side convention).
        let j = batch_docids.len();
        batch_docids.push(d);
        for (i, c) in cursors.iter_mut().enumerate() {
            let (span, first) = term_span(stride_off, stride_last, i, c);
            c.seek_pruned(d, false, span, first, doc_col, buffers)?;
            if c.cur == Some(d) {
                batch_payloads[i * v + j] = c.payload(pay_col, buffers, 1)?;
                c.advance(doc_col, buffers, 1)?;
            }
        }
        if batch_docids.len() == flush_at {
            flush!();
        }
    }
    flush!();
    Ok(seq)
}

/// Term `i`'s span of the scratch stride tables plus the global index of
/// its first stride (the span was recorded from the term's range start,
/// so its length pins the first stride without re-deriving the range).
fn term_span<'a>(
    stride_off: &[u32],
    stride_last: &'a [u32],
    i: usize,
    c: &TermCursor,
) -> (&'a [u32], usize) {
    let off = stride_off[i] as usize;
    let len = stride_off[i + 1] as usize - off;
    let first = (c.end - 1) / ENTRY_POINT_STRIDE + 1 - len;
    (&stride_last[off..off + len], first)
}

/// Term `i`'s suffix-max stride bound at the cursor's current position:
/// what any posting of the term at or past the cursor can still
/// contribute (already `BOUND_SLACK`-inflated by the pre-pass).
fn suffix_bound(stride_off: &[u32], stride_bounds: &[f32], i: usize, c: &TermCursor) -> f32 {
    let off = stride_off[i] as usize;
    let len = stride_off[i + 1] as usize - off;
    let first = (c.end - 1) / ENTRY_POINT_STRIDE + 1 - len;
    stride_bounds[off + c.pos / ENTRY_POINT_STRIDE - first]
}

/// Term `i`'s bound on what it can contribute to the *exact* candidate
/// docid `d`: zero once the cursor has proven `d` absent (cursor past
/// `d`, or range exhausted), otherwise the **raw** bound of the one
/// stride that can hold `d`'s posting — located with a staged-window
/// check against the cursor's current stride (free: the current stride
/// is always staged) and a binary search over the scratch stride-last
/// table for later strides. Strictly tighter than [`suffix_bound`],
/// which pays for the term's best remaining stride even when `d` lands
/// in a mediocre one. Only valid for the exact docid `d` — a range of
/// docids must use the suffix.
///
/// Soundness: interior strides hold a single term's rows, so their
/// recorded max docid is exact and the partition point lands on the true
/// destination stride. The two span-boundary strides can only
/// *overstate* their max: the first is the cursor's own stride, which
/// the staged last-docid check resolves exactly before the search, and
/// an overstated final stride at worst claims a past-the-end `d` is
/// still in range, bounding a true contribution of zero from above. NaN
/// raw bounds (corrupt metadata) propagate into the caller's sum and
/// fail its `<= theta` comparison: scored, never skipped.
#[allow(clippy::too_many_arguments)]
fn bound_at(
    stride_off: &[u32],
    stride_raw: &[f32],
    stride_last: &[u32],
    i: usize,
    c: &mut TermCursor,
    d: u32,
    doc_col: &Column,
    buffers: &BufferManager,
) -> Result<f32, ExecError> {
    let Some(cd) = c.cur else { return Ok(0.0) };
    if cd > d {
        return Ok(0.0);
    }
    let off = stride_off[i] as usize;
    let len = stride_off[i + 1] as usize - off;
    let first = (c.end - 1) / ENTRY_POINT_STRIDE + 1 - len;
    let rel = c.pos / ENTRY_POINT_STRIDE - first;
    if d <= c.stride_last_docid(doc_col, buffers)? {
        return Ok(stride_raw[off + rel]);
    }
    let tail = &stride_last[off + rel + 1..off + len];
    let j = tail.partition_point(|&m| m < d);
    Ok(if rel + 1 + j >= len {
        0.0
    } else {
        stride_raw[off + rel + 1 + j]
    })
}

/// One term's exact scoring contribution for a single candidate row — the
/// same expression shape the batch kernels fold, so a `BOUND_SLACK`
/// inflation of a partial sum of these dominates the canonical fold.
fn contribution(mode: ScoreMode, coef: f32, pay: u32, norm: f32) -> f32 {
    match mode {
        ScoreMode::Computed { .. } => {
            let tf = (pay as i32) as f32;
            coef * (tf / (tf + norm))
        }
        ScoreMode::MaterializedF32 => f32::from_bits(pay),
        ScoreMode::MaterializedQ8 => (pay as i32) as f32,
    }
}

/// Scores one assembled batch and offers every row to the heap.
#[allow(clippy::too_many_arguments)]
fn flush_batch(
    mode: ScoreMode,
    coefs: &[f32],
    view: &MetaView,
    len_window: &mut Window,
    buffers: &BufferManager,
    batch_docids: &[u32],
    batch_payloads: &[u32],
    v: usize,
    k: usize,
    norms: &mut Vec<f32>,
    scores: &mut Vec<f32>,
    heap: &mut Vec<HeapRow>,
    n: usize,
    seq: &mut u64,
) -> Result<(), ExecError> {
    let rows = batch_docids.len();
    if rows == 0 {
        return Ok(());
    }
    scores.clear();
    scores.resize(rows, 0.0);
    match mode {
        ScoreMode::Computed { c0, c1 } => {
            norms.clear();
            for &d in batch_docids {
                // Expression shape: c0 + c1 * cast_f32(gather(doclen)).
                norms.push(c0 + c1 * doc_len_f32(view, len_window, buffers, v, d)?);
            }
            for i in 0..k {
                score_computed(
                    scores,
                    &batch_payloads[i * v..i * v + rows],
                    coefs[i],
                    norms,
                    i == 0,
                );
            }
        }
        ScoreMode::MaterializedF32 | ScoreMode::MaterializedQ8 => {
            let f32_bits = matches!(mode, ScoreMode::MaterializedF32);
            for i in 0..k {
                score_materialized(
                    scores,
                    &batch_payloads[i * v..i * v + rows],
                    f32_bits,
                    i == 0,
                );
            }
        }
    }
    for (j, &d) in batch_docids.iter().enumerate() {
        *seq += 1;
        heap_offer(
            heap,
            n,
            HeapRow {
                score: scores[j],
                seq: *seq,
                docid: d,
            },
        );
    }
    Ok(())
}

/// Sorts the heap's retained rows (descending score, ascending arrival)
/// and appends them to `out`, leaving the heap cleared.
fn drain_heap(heap: &mut Vec<HeapRow>, out: &mut Vec<(u32, f32)>) {
    heap.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.seq.cmp(&b.seq)));
    out.extend(heap.iter().map(|r| (r.docid, r.score)));
    heap.clear();
}

// ---- scoring kernels ----------------------------------------------------

/// One term's contribution to the batch: `acc[j] (op)= coef * (tf / (tf +
/// norm[j]))` with `tf = cast_f32(payload as i32)`, where `(op)=` is plain
/// assignment for the first term (the fold has no zero seed). Dispatches
/// to the AVX2 kernel when active; both paths are IEEE-exact per element,
/// hence bit-identical.
fn score_computed(acc: &mut [f32], tfs: &[u32], coef: f32, norms: &[f32], first: bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x100_compress::simd_active() {
        // Safety: `simd_active` implies AVX2 was detected at runtime.
        unsafe { simd::score_computed_avx2(acc, tfs, coef, norms, first) };
        return;
    }
    score_computed_scalar(acc, tfs, coef, norms, first);
}

fn score_computed_scalar(acc: &mut [f32], tfs: &[u32], coef: f32, norms: &[f32], first: bool) {
    for j in 0..acc.len() {
        let tf = (tfs[j] as i32) as f32;
        let ts = coef * (tf / (tf + norms[j]));
        if first {
            acc[j] = ts;
        } else {
            acc[j] += ts;
        }
    }
}

/// One materialized term's contribution: the payload decoded as the plan
/// decodes it (`f32::from_bits` for F32 indexes, `cast_f32` for quantized
/// codes), assigned for the first term and summed for the rest.
fn score_materialized(acc: &mut [f32], payloads: &[u32], f32_bits: bool, first: bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x100_compress::simd_active() {
        // Safety: `simd_active` implies AVX2 was detected at runtime.
        unsafe { simd::score_materialized_avx2(acc, payloads, f32_bits, first) };
        return;
    }
    score_materialized_scalar(acc, payloads, f32_bits, first);
}

fn score_materialized_scalar(acc: &mut [f32], payloads: &[u32], f32_bits: bool, first: bool) {
    for j in 0..acc.len() {
        let s = if f32_bits {
            f32::from_bits(payloads[j])
        } else {
            (payloads[j] as i32) as f32
        };
        if first {
            acc[j] = s;
        } else {
            acc[j] += s;
        }
    }
}

/// AVX2 scoring kernels: 8 candidate rows per iteration, scalar tail.
/// Every operation used — `cvtepi32_ps`, `div_ps`, `mul_ps`, `add_ps` —
/// is IEEE-exact, and multiplies/adds are kept separate (no FMA), so the
/// lanes compute bit-for-bit what the scalar loop computes.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn score_computed_avx2(
        acc: &mut [f32],
        tfs: &[u32],
        coef: f32,
        norms: &[f32],
        first: bool,
    ) {
        let n8 = acc.len() & !7;
        let c = _mm256_set1_ps(coef);
        let mut j = 0;
        while j < n8 {
            let tf = _mm256_cvtepi32_ps(_mm256_loadu_si256(tfs.as_ptr().add(j).cast()));
            let nm = _mm256_loadu_ps(norms.as_ptr().add(j));
            let ts = _mm256_mul_ps(c, _mm256_div_ps(tf, _mm256_add_ps(tf, nm)));
            let out = if first {
                ts
            } else {
                _mm256_add_ps(_mm256_loadu_ps(acc.as_ptr().add(j)), ts)
            };
            _mm256_storeu_ps(acc.as_mut_ptr().add(j), out);
            j += 8;
        }
        super::score_computed_scalar(&mut acc[n8..], &tfs[n8..], coef, &norms[n8..], first);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn score_materialized_avx2(
        acc: &mut [f32],
        payloads: &[u32],
        f32_bits: bool,
        first: bool,
    ) {
        let n8 = acc.len() & !7;
        let mut j = 0;
        while j < n8 {
            let raw = _mm256_loadu_si256(payloads.as_ptr().add(j).cast());
            let s = if f32_bits {
                _mm256_castsi256_ps(raw)
            } else {
                _mm256_cvtepi32_ps(raw)
            };
            let out = if first {
                s
            } else {
                _mm256_add_ps(_mm256_loadu_ps(acc.as_ptr().add(j)), s)
            };
            _mm256_storeu_ps(acc.as_mut_ptr().add(j), out);
            j += 8;
        }
        super::score_materialized_scalar(&mut acc[n8..], &payloads[n8..], f32_bits, first);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_replicates_ieee_cheap_reject_on_signed_zero() {
        // A -0.0 incumbent at the root must survive a +0.0 challenger:
        // IEEE `0.0 <= -0.0` is true, so TopN cheap-rejects — even though
        // total_cmp says +0.0 > -0.0. Sort-then-truncate would differ.
        let mut heap = Vec::new();
        heap_offer(
            &mut heap,
            1,
            HeapRow {
                score: -0.0,
                seq: 1,
                docid: 7,
            },
        );
        heap_offer(
            &mut heap,
            1,
            HeapRow {
                score: 0.0,
                seq: 2,
                docid: 9,
            },
        );
        assert_eq!(heap.len(), 1);
        assert_eq!(heap[0].docid, 7, "+0.0 must not displace a -0.0 incumbent");
    }

    #[test]
    fn heap_keeps_earliest_arrivals_on_ties() {
        let mut heap = Vec::new();
        for seq in 1..=5 {
            heap_offer(
                &mut heap,
                2,
                HeapRow {
                    score: 1.0,
                    seq,
                    docid: seq as u32,
                },
            );
        }
        let mut out = Vec::new();
        drain_heap(&mut heap, &mut out);
        assert_eq!(out, vec![(1, 1.0), (2, 1.0)], "ties keep first arrivals");
    }

    #[test]
    fn scalar_kernels_match_reference_fold() {
        let tfs = [3u32, 0, 17, 1, 0, 255, 42, 9, 2];
        let norms: Vec<f32> = (0..9).map(|i| 0.3 + i as f32 * 0.07).collect();
        let mut acc = vec![0.0f32; 9];
        score_computed_scalar(&mut acc, &tfs, -1.5, &norms, true);
        score_computed_scalar(&mut acc, &tfs, 2.25, &norms, false);
        for j in 0..9 {
            let tf = tfs[j] as f32;
            let expect = -1.5 * (tf / (tf + norms[j])) + 2.25 * (tf / (tf + norms[j]));
            assert_eq!(acc[j].to_bits(), expect.to_bits(), "row {j}");
        }
    }

    #[test]
    fn poison_then_default_reset_is_safe() {
        let mut s = QueryScratch::new();
        s.poison(0xDEAD_BEEF);
        s.poison(1); // twice: poisoning must not corrupt Vec invariants
        assert!(s.terms.capacity() >= s.terms.len());
    }
}
