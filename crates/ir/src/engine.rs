//! The query engine: keyword search as relational query plans (§3.2–3.3).
//!
//! Every strategy in Table 2 is built from the same X100 operators:
//!
//! * **BoolAND** — `Join(ScanSelect(TD, t1), ScanSelect(TD, t2), ...)`:
//!   a fold of inner merge-joins over posting lists.
//! * **BoolOR** — the same fold with `MergeOuterJoin`.
//! * **BM25** — outer-join the lists keeping each term's `tf`, then a
//!   `Project` computing equation 2 with vectorized primitives (document
//!   length fetched by positional gather against the dense D table), then
//!   `TopN(score DESC, n)`.
//! * **+Two-pass (T)** — first run the plan with *inner* joins (documents
//!   containing all terms); only if fewer than `n` results come back, run
//!   the outer-join plan (§3.3's heuristic; the paper reports ~15 % of
//!   queries needing the second pass).
//! * **+Materialization (M/Q8)** — scan the precomputed `score` column
//!   instead of `tf`, skipping both the per-posting BM25 arithmetic and the
//!   D-table access: the final `Project` merely sums per-term scores.
//!
//! Compression (C) is an index-build property ([`crate::IndexConfig`]), not
//! a strategy: the same plans run over compressed or raw columns.

use std::sync::Arc;
use std::time::{Duration, Instant};

use x100_exec::prelude::*;
use x100_exec::ExecError;
use x100_storage::{BufferManager, BufferMode, DiskModel, IoStats};
use x100_vector::VectorSize;

use crate::bm25::idf;
use crate::hot::QueryScratch;
use crate::index::{InvertedIndex, Materialize};

/// The search strategies of the Table 2 ladder (compression excluded — that
/// lives in the index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Unranked conjunctive retrieval.
    BoolAnd,
    /// Unranked disjunctive retrieval.
    BoolOr,
    /// BM25 computed from tf/doclen at query time, single (outer) pass.
    Bm25,
    /// BM25 with the two-pass conjunctive-first optimization.
    Bm25TwoPass,
    /// Materialized per-term scores (f32 or quantized, per the index).
    Bm25Materialized,
    /// Materialized scores + two-pass.
    Bm25MaterializedTwoPass,
    /// Computed BM25 with block-max dynamic pruning: MaxScore partitioning
    /// plus per-stride upper bounds skip postings that cannot reach the
    /// top-`n`, bit-identical to [`SearchStrategy::Bm25`]. Indexes without
    /// block-max metadata fall back to the exhaustive plan.
    Bm25Pruned,
    /// Materialized scores with block-max pruning; bit-identical to
    /// [`SearchStrategy::Bm25Materialized`].
    Bm25MaterializedPruned,
}

impl SearchStrategy {
    /// Every strategy of the Table 2 ladder, in ladder order, followed by
    /// the pruned execution modes.
    pub const ALL: [SearchStrategy; 8] = [
        SearchStrategy::BoolAnd,
        SearchStrategy::BoolOr,
        SearchStrategy::Bm25,
        SearchStrategy::Bm25TwoPass,
        SearchStrategy::Bm25Materialized,
        SearchStrategy::Bm25MaterializedTwoPass,
        SearchStrategy::Bm25Pruned,
        SearchStrategy::Bm25MaterializedPruned,
    ];

    /// The strategy's stable one-byte tag on the network wire. Tags are
    /// part of the framed search protocol: never reorder or reuse them,
    /// only append.
    pub fn wire_tag(self) -> u8 {
        match self {
            SearchStrategy::BoolAnd => 0,
            SearchStrategy::BoolOr => 1,
            SearchStrategy::Bm25 => 2,
            SearchStrategy::Bm25TwoPass => 3,
            SearchStrategy::Bm25Materialized => 4,
            SearchStrategy::Bm25MaterializedTwoPass => 5,
            SearchStrategy::Bm25Pruned => 6,
            SearchStrategy::Bm25MaterializedPruned => 7,
        }
    }

    /// Decodes a wire tag written by [`Self::wire_tag`]; `None` for bytes
    /// no strategy claims (a decoder surfaces that as a typed protocol
    /// error, never a panic).
    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.wire_tag() == tag)
    }

    /// Whether the strategy needs a materialized score column.
    pub fn needs_materialized(self) -> bool {
        matches!(
            self,
            SearchStrategy::Bm25Materialized
                | SearchStrategy::Bm25MaterializedTwoPass
                | SearchStrategy::Bm25MaterializedPruned
        )
    }

    /// Whether the strategy uses block-max dynamic pruning.
    pub fn is_pruned(self) -> bool {
        matches!(
            self,
            SearchStrategy::Bm25Pruned | SearchStrategy::Bm25MaterializedPruned
        )
    }

    /// Whether the strategy uses the two-pass heuristic.
    pub fn is_two_pass(self) -> bool {
        matches!(
            self,
            SearchStrategy::Bm25TwoPass | SearchStrategy::Bm25MaterializedTwoPass
        )
    }
}

/// One ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Document id.
    pub docid: u32,
    /// Final (summed) score; 0 for boolean strategies.
    pub score: f32,
    /// Document name from the D table.
    pub name: String,
}

/// Results plus execution accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// Ranked hits, best first.
    pub results: Vec<SearchResult>,
    /// 1 or 2 (two-pass strategies only reach 2 when the first pass came
    /// up short).
    pub passes: u8,
    /// Simulated I/O charged during this search. Computed as a delta of
    /// the (shared) buffer pool's counters: exact when the pool serves one
    /// query at a time; with concurrent queries on the same pool it may
    /// include their interleaved misses (run-level pool totals stay
    /// exact).
    pub io: IoStats,
    /// Wall-clock execution time. Excludes *accounted* simulated I/O, but
    /// includes the real sleeps a pool built with
    /// `BufferManager::with_simulated_miss_latency` enacts on misses.
    pub cpu_time: Duration,
}

/// Accounting for a scratch-path search that returns raw `(docid, score)`
/// hits instead of materializing named results: the [`SearchResponse`]
/// metadata without its allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitsResponse {
    /// 1 or 2, as in [`SearchResponse::passes`].
    pub passes: u8,
    /// Simulated I/O delta, as in [`SearchResponse::io`].
    pub io: IoStats,
    /// Wall-clock execution time, as in [`SearchResponse::cpu_time`].
    pub cpu_time: Duration,
}

/// Executes keyword queries against an [`InvertedIndex`].
pub struct QueryEngine<'a> {
    index: &'a InvertedIndex,
    buffers: Arc<BufferManager>,
    vector_size: usize,
}

impl<'a> QueryEngine<'a> {
    /// Engine with hot (unbounded, warm-once) buffering and the default
    /// RAID disk model.
    pub fn new(index: &'a InvertedIndex) -> Self {
        Self::with_buffering(index, DiskModel::raid12(), BufferMode::Hot, 0)
    }

    /// Engine with explicit disk model and buffer mode.
    pub fn with_buffering(
        index: &'a InvertedIndex,
        disk: DiskModel,
        mode: BufferMode,
        capacity_bytes: usize,
    ) -> Self {
        Self::with_buffer_manager(
            index,
            Arc::new(BufferManager::with_mode(disk, mode, capacity_bytes)),
        )
    }

    /// Engine over an externally owned buffer manager — cluster nodes keep
    /// one persistent pool per node and hand short-lived engines to each
    /// query stream.
    pub fn with_buffer_manager(index: &'a InvertedIndex, buffers: Arc<BufferManager>) -> Self {
        QueryEngine {
            index,
            buffers,
            vector_size: VectorSize::DEFAULT.get(),
        }
    }

    /// The buffer manager (for warming, evicting, stats).
    pub fn buffers(&self) -> &BufferManager {
        &self.buffers
    }

    /// The index this engine queries.
    pub fn index(&self) -> &InvertedIndex {
        self.index
    }

    /// Builder-style vector-size override (the §4 demonstration knob),
    /// folded into construction so a finished engine is immutable: every
    /// query method takes `&self`, and engines can be shared or rebuilt
    /// per worker without interior mutability.
    #[must_use]
    pub fn with_vector_size(mut self, size: impl Into<VectorSize>) -> Self {
        self.vector_size = size.into().get();
        self
    }

    /// Current vector size.
    pub fn vector_size(&self) -> usize {
        self.vector_size
    }

    /// Convenience: search by term strings, returning just the hits.
    pub fn search_terms(
        &self,
        terms: &[&str],
        strategy: SearchStrategy,
        n: usize,
    ) -> Vec<SearchResult> {
        let ids: Vec<u32> = terms.iter().filter_map(|t| self.index.term_id(t)).collect();
        self.search(&ids, strategy, n)
            .map(|r| r.results)
            .unwrap_or_default()
    }

    /// Runs one query: term ids in, ranked top-`n` out.
    pub fn search(
        &self,
        term_ids: &[u32],
        strategy: SearchStrategy,
        n: usize,
    ) -> Result<SearchResponse, ExecError> {
        if strategy.needs_materialized() && !self.index.has_materialized_scores() {
            return Err(ExecError::Plan(
                "strategy requires a materialized score column; build the index \
                 with Materialize::F32 or Materialize::Quantized8"
                    .into(),
            ));
        }
        // Drop unknown/empty terms: they contribute nothing to any strategy.
        let terms: Vec<u32> = term_ids
            .iter()
            .copied()
            .filter(|&t| !self.index.term_range(t).is_empty())
            .collect();

        let io_before = self.buffers.stats();
        let started = Instant::now();
        let mut passes = 1u8;

        let mut ranked = if terms.is_empty() {
            Vec::new()
        } else {
            match strategy {
                SearchStrategy::BoolAnd => self.run_boolean(&terms, n, true)?,
                SearchStrategy::BoolOr => self.run_boolean(&terms, n, false)?,
                // The oracle for the pruned modes is the exhaustive
                // disjunctive plan: pruning is an execution detail that must
                // not change a single output bit.
                SearchStrategy::Bm25 | SearchStrategy::Bm25Pruned => {
                    self.run_ranked(&terms, n, false)?
                }
                SearchStrategy::Bm25Materialized | SearchStrategy::Bm25MaterializedPruned => {
                    self.run_ranked(&terms, n, true)?
                }
                SearchStrategy::Bm25TwoPass | SearchStrategy::Bm25MaterializedTwoPass => {
                    let materialized = strategy.needs_materialized();
                    // Pass 1: conjunctive. A document containing all query
                    // terms is likely to outscore one that does not.
                    let first = self.run_ranked_conjunctive(&terms, n, materialized)?;
                    if first.len() >= n || terms.len() == 1 {
                        first
                    } else {
                        passes = 2;
                        self.run_ranked(&terms, n, materialized)?
                    }
                }
            }
        };
        ranked.truncate(n);

        let cpu_time = started.elapsed();
        let io = self.buffers.stats().delta_since(&io_before);

        let results = ranked
            .into_iter()
            .map(|(docid, score)| SearchResult {
                docid,
                score,
                name: self.index.doc_name(docid).unwrap_or_default(),
            })
            .collect();
        Ok(SearchResponse {
            results,
            passes,
            io,
            cpu_time,
        })
    }

    /// Runs one query through the fused allocation-free path
    /// ([`crate::hot`]), reusing the caller's scratch arena, and
    /// materializes a full [`SearchResponse`] (names included — this
    /// variant allocates for the response itself; serving workers that
    /// only need docids should use [`Self::search_hits_into`]).
    ///
    /// Bit-identical to [`Self::search`] for every strategy.
    pub fn search_with_scratch(
        &self,
        term_ids: &[u32],
        strategy: SearchStrategy,
        n: usize,
        scratch: &mut QueryScratch,
    ) -> Result<SearchResponse, ExecError> {
        let mut hits = std::mem::take(&mut scratch.hits);
        let meta = self.search_hits_into(term_ids, strategy, n, scratch, &mut hits);
        let results = hits
            .iter()
            .map(|&(docid, score)| SearchResult {
                docid,
                score,
                name: self.index.doc_name(docid).unwrap_or_default(),
            })
            .collect();
        scratch.hits = hits;
        let meta = meta?;
        Ok(SearchResponse {
            results,
            passes: meta.passes,
            io: meta.io,
            cpu_time: meta.cpu_time,
        })
    }

    /// The allocation-free core: runs one query through the fused path,
    /// filling `out` (cleared first) with up to `n` `(docid, score)` hits,
    /// best first. Steady state (scratch and `out` grown by a warmup
    /// query) performs zero heap allocations — pinned by
    /// `tests/hot_path_allocs.rs`.
    pub fn search_hits_into(
        &self,
        term_ids: &[u32],
        strategy: SearchStrategy,
        n: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<(u32, f32)>,
    ) -> Result<HitsResponse, ExecError> {
        let io_before = self.buffers.stats();
        let started = Instant::now();
        let passes = crate::hot::search_into(
            self.index,
            &self.buffers,
            self.vector_size,
            term_ids,
            strategy,
            n,
            scratch,
            out,
        )?;
        let cpu_time = started.elapsed();
        let io = self.buffers.stats().delta_since(&io_before);
        Ok(HitsResponse {
            passes,
            io,
            cpu_time,
        })
    }

    // ---- plan builders ---------------------------------------------------

    /// Scan of one term's posting list with the given payload column.
    fn posting_scan(
        &'a self,
        term: u32,
        payload: Option<&str>,
    ) -> Result<Box<dyn Operator + 'a>, ExecError> {
        let range = self.index.term_range(term);
        let cols: Vec<&str> = match payload {
            Some(p) => vec!["docid", p],
            None => vec!["docid"],
        };
        Ok(Box::new(TableScan::with_range(
            self.index.td(),
            &self.buffers,
            &cols,
            range,
            self.vector_size,
        )?))
    }

    /// Boolean retrieval: fold of (outer) merge-joins over docid-only scans,
    /// then take the first `n` docids (no ranking — Table 2 shows why that
    /// is a bad idea).
    fn run_boolean(
        &self,
        terms: &[u32],
        n: usize,
        conjunctive: bool,
    ) -> Result<Vec<(u32, f32)>, ExecError> {
        let mut plan = self.posting_scan(terms[0], None)?;
        for &t in &terms[1..] {
            let right = self.posting_scan(t, None)?;
            // After each join: [docid_l, docid_r] -> [docid].
            let joined: Box<dyn Operator + '_> = if conjunctive {
                let j = MergeJoin::new(plan, right, 0, 0, self.vector_size)?;
                // Inner join: both docids equal; keep the left.
                Box::new(Project::new(Box::new(j), vec![Expr::col_i32(0)]))
            } else {
                let j = MergeOuterJoin::new(plan, right, 0, 0, self.vector_size)?;
                // Outer join: the missing side is 0; MAX recovers the docid.
                Box::new(Project::new(
                    Box::new(j),
                    vec![Expr::max(Expr::col_i32(0), Expr::col_i32(1))],
                ))
            };
            plan = joined;
        }
        // Unranked: emit in docid order, truncated to n.
        let mut out = Vec::with_capacity(n);
        let mut op = plan;
        op.open()?;
        'outer: while let Some(mut batch) = op.next()? {
            batch.compact();
            for &d in batch.column(0).as_i32() {
                out.push((d as u32, 0.0));
                if out.len() >= n {
                    break 'outer;
                }
            }
        }
        op.close();
        Ok(out)
    }

    /// Ranked retrieval over the disjunctive (outer-join) plan.
    fn run_ranked(
        &self,
        terms: &[u32],
        n: usize,
        materialized: bool,
    ) -> Result<Vec<(u32, f32)>, ExecError> {
        let plan = self.build_ranked_plan(terms, materialized, false)?;
        let score = self.score_expr(terms, materialized);
        self.run_topn(plan, score, n)
    }

    /// Ranked retrieval over the conjunctive (inner-join) plan — pass 1 of
    /// the two-pass strategy.
    fn run_ranked_conjunctive(
        &self,
        terms: &[u32],
        n: usize,
        materialized: bool,
    ) -> Result<Vec<(u32, f32)>, ExecError> {
        let plan = self.build_ranked_plan(terms, materialized, true)?;
        let score = self.score_expr(terms, materialized);
        self.run_topn(plan, score, n)
    }

    /// Builds the join tree producing `[docid, payload_1, ..., payload_k]`.
    fn build_ranked_plan(
        &'a self,
        terms: &[u32],
        materialized: bool,
        conjunctive: bool,
    ) -> Result<Box<dyn Operator + 'a>, ExecError> {
        let payload = if materialized { "score" } else { "tf" };
        let mut plan = self.posting_scan(terms[0], Some(payload))?;
        for (i, &t) in terms.iter().enumerate().skip(1) {
            let right = self.posting_scan(t, Some(payload))?;
            // Left shape: [docid, p_1..p_i]; right: [docid, p].
            // Joined: [docid_l, p_1..p_i, docid_r, p_r].
            let n_left = 1 + i;
            let joined: Box<dyn Operator + '_> = if conjunctive {
                Box::new(MergeJoin::new(plan, right, 0, 0, self.vector_size)?)
            } else {
                Box::new(MergeOuterJoin::new(plan, right, 0, 0, self.vector_size)?)
            };
            // Normalize back to [docid, p_1..p_{i+1}].
            let mut exprs = Vec::with_capacity(i + 2);
            exprs.push(if conjunctive {
                Expr::col_i32(0)
            } else {
                Expr::max(Expr::col_i32(0), Expr::col_i32(n_left))
            });
            for p in 1..n_left {
                exprs.push(Expr::col_i32(p));
            }
            exprs.push(Expr::col_i32(n_left + 1));
            plan = Box::new(Project::new(joined, exprs));
        }
        Ok(plan)
    }

    /// Appends the scoring projection + TopN over `[docid, p_1..p_k]` and
    /// drains the plan into `(docid, score)` pairs, best first.
    fn run_topn(
        &self,
        plan: Box<dyn Operator + '_>,
        score: Expr,
        n: usize,
    ) -> Result<Vec<(u32, f32)>, ExecError> {
        let projected = Project::new(plan, vec![Expr::col_i32(0), score]);
        let topn = TopN::new(Box::new(projected), 1, n, self.vector_size)?;
        let batches = x100_exec::collect_batches(topn)?;
        let mut out = Vec::with_capacity(n);
        for b in &batches {
            let ids = b.column(0).as_i32();
            let scores = b.column(1).as_f32();
            for (&d, &s) in ids.iter().zip(scores) {
                out.push((d as u32, s));
            }
        }
        Ok(out)
    }

    /// The scoring expression over `[docid, p_1..p_k]` for the given terms.
    fn score_expr(&self, terms: &[u32], materialized: bool) -> Expr {
        if materialized {
            // Sum the per-term materialized scores. For the f32 variant the
            // payload is stored bit-cast; for quantized it is a small code.
            let decode = |col: usize| match self.index.config().materialize {
                Materialize::F32 => Expr::f32_from_bits(Expr::col_i32(col)),
                Materialize::Quantized8 | Materialize::None => Expr::cast_f32(Expr::col_i32(col)),
            };
            let mut score = decode(1);
            for t in 1..terms.len() {
                score = Expr::add(score, decode(t + 1));
            }
            return score;
        }
        self.computed_bm25_expr(terms)
    }

    /// The computed-BM25 scoring expression (equations 1 and 2) for
    /// specific terms: per-term idf constants are folded into the plan.
    fn computed_bm25_expr(&self, terms: &[u32]) -> Expr {
        let params = self.index.config().params;
        let stats = self.index.stats();
        let doclen = Expr::cast_f32(Expr::gather_i32(
            self.index.doc_lens().clone(),
            Expr::col_i32(0),
        ));
        let norm = Expr::add(
            Expr::const_f32(params.k1 * (1.0 - params.b)),
            Expr::mul(
                Expr::const_f32(params.k1 * params.b / stats.avg_doc_len),
                doclen,
            ),
        );
        let mut score: Option<Expr> = None;
        for (i, &t) in terms.iter().enumerate() {
            let w_idf = idf(stats.num_docs, self.index.doc_freq(t));
            let tf = Expr::cast_f32(Expr::col_i32(i + 1));
            // idf * (k1+1) * tf / (tf + norm)
            let term_score = Expr::mul(
                Expr::const_f32(w_idf * (params.k1 + 1.0)),
                Expr::div(tf.clone(), Expr::add(tf, norm.clone())),
            );
            score = Some(match score {
                Some(acc) => Expr::add(acc, term_score),
                None => term_score,
            });
        }
        score.expect("at least one term")
    }

    /// Nested boolean retrieval (§3.2): compiles a [`crate::BooleanQuery`]
    /// tree to the paper's Join/OuterJoin plan and returns the matching
    /// documents in docid order (unranked — score is 0).
    ///
    /// Unlike the flat ranked API, boolean semantics are strict: a term that
    /// matches nothing empties every `AND` it participates in.
    pub fn search_boolean(
        &self,
        query: &crate::boolean::BooleanQuery,
        n: usize,
    ) -> Result<SearchResponse, ExecError> {
        let io_before = self.buffers.stats();
        let started = Instant::now();

        let mut op = self.boolean_plan(query)?;
        let mut docids = Vec::new();
        op.open()?;
        'outer: while let Some(mut batch) = op.next()? {
            batch.compact();
            for &d in batch.column(0).as_i32() {
                docids.push(d as u32);
                if docids.len() >= n {
                    break 'outer;
                }
            }
        }
        op.close();

        let cpu_time = started.elapsed();
        let io = self.buffers.stats().delta_since(&io_before);
        let results = docids
            .into_iter()
            .map(|docid| SearchResult {
                docid,
                score: 0.0,
                name: self.index.doc_name(docid).unwrap_or_default(),
            })
            .collect();
        Ok(SearchResponse {
            results,
            passes: 1,
            io,
            cpu_time,
        })
    }

    /// Recursively compiles a boolean tree into an operator producing one
    /// strictly increasing docid column.
    fn boolean_plan(
        &'a self,
        query: &crate::boolean::BooleanQuery,
    ) -> Result<Box<dyn Operator + 'a>, ExecError> {
        use crate::boolean::BooleanQuery;
        match query {
            BooleanQuery::Term(t) => {
                // Unknown terms scan the empty range: strictly nothing.
                let term = self.index.term_id(t);
                match term {
                    Some(t) => self.posting_scan(t, None),
                    None => Ok(Box::new(TableScan::with_range(
                        self.index.td(),
                        &self.buffers,
                        &["docid"],
                        0..0,
                        self.vector_size,
                    )?)),
                }
            }
            BooleanQuery::And(parts) | BooleanQuery::Or(parts) => {
                let conjunctive = matches!(query, BooleanQuery::And(_));
                let mut iter = parts.iter();
                let first = iter
                    .next()
                    .ok_or_else(|| ExecError::Plan("empty boolean AND/OR node".into()))?;
                let mut plan = self.boolean_plan(first)?;
                for part in iter {
                    let right = self.boolean_plan(part)?;
                    plan = if conjunctive {
                        let j = MergeJoin::new(plan, right, 0, 0, self.vector_size)?;
                        Box::new(Project::new(Box::new(j), vec![Expr::col_i32(0)]))
                    } else {
                        let j = MergeOuterJoin::new(plan, right, 0, 0, self.vector_size)?;
                        Box::new(Project::new(
                            Box::new(j),
                            vec![Expr::max(Expr::col_i32(0), Expr::col_i32(1))],
                        ))
                    };
                }
                Ok(plan)
            }
        }
    }

    /// Conjunctive BM25 retrieval via skipping (leapfrog) list intersection
    /// instead of the relational merge-join fold — the §2.1 "fine-granularity
    /// access and skipping" machinery applied to query processing, in the
    /// spirit of the pruning techniques §5 says "can be implemented on top
    /// of a DBMS".
    ///
    /// Returns the same documents as the first (conjunctive) pass of
    /// [`SearchStrategy::Bm25TwoPass`], scored identically; only the access
    /// path differs. For rare∧common term combinations it touches a small
    /// fraction of the long list's windows.
    pub fn search_conjunctive_skipping(
        &self,
        term_ids: &[u32],
        n: usize,
    ) -> Result<SearchResponse, ExecError> {
        let mut scratch = QueryScratch::new();
        self.search_conjunctive_skipping_with_scratch(term_ids, n, &mut scratch)
    }

    /// [`Self::search_conjunctive_skipping`] reusing a caller-held scratch
    /// arena — the skipping intersection, per-match scoring and top-k heap
    /// all run inside the arena's cursors and buffers, so a warm query
    /// allocates only for the materialized response.
    pub fn search_conjunctive_skipping_with_scratch(
        &self,
        term_ids: &[u32],
        n: usize,
        scratch: &mut QueryScratch,
    ) -> Result<SearchResponse, ExecError> {
        let mut hits = std::mem::take(&mut scratch.hits);
        let meta = self.search_conjunctive_skipping_hits_into(term_ids, n, scratch, &mut hits);
        let results = hits
            .iter()
            .map(|&(docid, score)| SearchResult {
                docid,
                score,
                name: self.index.doc_name(docid).unwrap_or_default(),
            })
            .collect();
        scratch.hits = hits;
        let meta = meta?;
        Ok(SearchResponse {
            results,
            passes: meta.passes,
            io: meta.io,
            cpu_time: meta.cpu_time,
        })
    }

    /// The allocation-free core of the skipping conjunctive path: fills
    /// `out` (cleared first) with up to `n` `(docid, score)` hits, best
    /// first, reusing the scratch arena's cursors for the galloping
    /// leapfrog. Steady state performs zero heap allocations — pinned by
    /// `tests/hot_path_allocs.rs`.
    pub fn search_conjunctive_skipping_hits_into(
        &self,
        term_ids: &[u32],
        n: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<(u32, f32)>,
    ) -> Result<HitsResponse, ExecError> {
        let io_before = self.buffers.stats();
        let started = Instant::now();
        crate::hot::conjunctive_skipping_into(
            self.index,
            &self.buffers,
            self.vector_size,
            term_ids,
            n,
            scratch,
            out,
        )?;
        let cpu_time = started.elapsed();
        let io = self.buffers.stats().delta_since(&io_before);
        Ok(HitsResponse {
            passes: 1,
            io,
            cpu_time,
        })
    }

    /// Renders the paper-style relational plan for a query (the demo's
    /// "display the relational query plan" feature, §4).
    pub fn plan_text(&self, terms: &[&str], strategy: SearchStrategy, n: usize) -> String {
        let mut scans: Vec<String> = terms
            .iter()
            .map(|t| format!("ScanSelect( TD=TD, TD.term=\"{t}\" )"))
            .collect();
        if scans.is_empty() {
            return "Empty".to_owned();
        }
        let join_name = match strategy {
            SearchStrategy::BoolAnd => "MergeJoin",
            SearchStrategy::BoolOr => "MergeOuterJoin",
            SearchStrategy::Bm25 | SearchStrategy::Bm25Materialized => "MergeOuterJoin",
            SearchStrategy::Bm25TwoPass | SearchStrategy::Bm25MaterializedTwoPass => {
                "MergeJoin|MergeOuterJoin"
            }
            // The pruned modes keep the outer-join shape; the block-max
            // skip is surfaced as a ScanSelect annotation below.
            SearchStrategy::Bm25Pruned | SearchStrategy::Bm25MaterializedPruned => {
                "MergeOuterJoin[blockmax-skip]"
            }
        };
        let mut tree = scans.remove(0);
        for s in scans {
            tree = format!("{join_name}(\n  {tree},\n  {s})");
        }
        match strategy {
            SearchStrategy::BoolAnd | SearchStrategy::BoolOr => tree,
            SearchStrategy::Bm25 | SearchStrategy::Bm25TwoPass | SearchStrategy::Bm25Pruned => {
                format!(
                    "TopN(\n Project(\n  {tree}\n  [ D.docname, score=BM25(tf, D.doclen, ftd) ]),\n [ score DESC ], {n})"
                )
            }
            SearchStrategy::Bm25Materialized
            | SearchStrategy::Bm25MaterializedTwoPass
            | SearchStrategy::Bm25MaterializedPruned => {
                format!(
                    "TopN(\n Project(\n  {tree}\n  [ docid, score=SUM(TD.score) ]),\n [ score DESC ], {n})"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexConfig, InvertedIndex};
    use std::collections::HashSet;
    use x100_corpus::{precision_at_k, CollectionConfig, SyntheticCollection};

    fn setup(config: IndexConfig) -> (SyntheticCollection, InvertedIndex) {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &config);
        (c, idx)
    }

    /// Reference scorer: straight-line BM25 over the raw collection.
    fn reference_bm25(
        c: &SyntheticCollection,
        idx: &InvertedIndex,
        terms: &[u32],
        n: usize,
    ) -> Vec<(u32, f32)> {
        let params = idx.config().params;
        let stats = idx.stats();
        let mut scored: Vec<(u32, f32)> = c
            .docs
            .iter()
            .filter_map(|d| {
                let mut score = 0.0f32;
                let mut any = false;
                for &t in terms {
                    if let Ok(j) = d.terms.binary_search_by_key(&t, |&(t2, _)| t2) {
                        any = true;
                        score += crate::bm25::term_weight(
                            params,
                            stats,
                            idx.doc_freq(t),
                            d.terms[j].1,
                            d.len,
                        );
                    }
                }
                any.then_some((d.id, score))
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(n);
        scored
    }

    fn pick_terms(c: &SyntheticCollection, idx: &InvertedIndex) -> Vec<u32> {
        // Two mid-frequency terms guaranteed non-empty.
        let q = &c.eval_queries[0];
        q.terms
            .iter()
            .copied()
            .filter(|&t| idx.doc_freq(t) > 0)
            .take(3)
            .collect()
    }

    #[test]
    fn bm25_matches_reference_scorer() {
        let (c, idx) = setup(IndexConfig::uncompressed());
        let engine = QueryEngine::new(&idx);
        let terms = pick_terms(&c, &idx);
        let resp = engine.search(&terms, SearchStrategy::Bm25, 10).unwrap();
        let reference = reference_bm25(&c, &idx, &terms, 10);
        let got: Vec<u32> = resp.results.iter().map(|r| r.docid).collect();
        let expect: Vec<u32> = reference.iter().map(|&(d, _)| d).collect();
        assert_eq!(got, expect);
        for (r, &(_, s)) in resp.results.iter().zip(&reference) {
            assert!((r.score - s).abs() < 1e-3, "{} vs {s}", r.score);
        }
    }

    #[test]
    fn bm25_identical_on_compressed_index() {
        let (c, raw_idx) = setup(IndexConfig::uncompressed());
        let (_, comp_idx) = setup(IndexConfig::compressed());
        let terms = pick_terms(&c, &raw_idx);
        let raw_engine = QueryEngine::new(&raw_idx);
        let comp_engine = QueryEngine::new(&comp_idx);
        let a = raw_engine.search(&terms, SearchStrategy::Bm25, 20).unwrap();
        let b = comp_engine
            .search(&terms, SearchStrategy::Bm25, 20)
            .unwrap();
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn bool_and_returns_docs_with_all_terms() {
        let (c, idx) = setup(IndexConfig::uncompressed());
        let engine = QueryEngine::new(&idx);
        let terms = pick_terms(&c, &idx);
        let resp = engine
            .search(&terms, SearchStrategy::BoolAnd, 1000)
            .unwrap();
        for r in &resp.results {
            let doc = &c.docs[r.docid as usize];
            for &t in &terms {
                assert!(
                    doc.terms.binary_search_by_key(&t, |&(t2, _)| t2).is_ok(),
                    "doc {} missing term {t}",
                    r.docid
                );
            }
        }
        // And completeness: count matching docs directly.
        let expected = c
            .docs
            .iter()
            .filter(|d| {
                terms
                    .iter()
                    .all(|&t| d.terms.binary_search_by_key(&t, |&(t2, _)| t2).is_ok())
            })
            .count();
        assert_eq!(resp.results.len(), expected.min(1000));
    }

    #[test]
    fn bool_or_returns_docs_with_any_term() {
        let (c, idx) = setup(IndexConfig::uncompressed());
        let engine = QueryEngine::new(&idx);
        let terms = pick_terms(&c, &idx);
        let resp = engine
            .search(&terms, SearchStrategy::BoolOr, 100_000)
            .unwrap();
        let expected = c
            .docs
            .iter()
            .filter(|d| {
                terms
                    .iter()
                    .any(|&t| d.terms.binary_search_by_key(&t, |&(t2, _)| t2).is_ok())
            })
            .count();
        assert_eq!(resp.results.len(), expected);
    }

    #[test]
    fn two_pass_agrees_with_single_pass_on_top_n() {
        let (c, idx) = setup(IndexConfig::uncompressed());
        let engine = QueryEngine::new(&idx);
        for q in &c.eval_queries {
            let single = engine.search(&q.terms, SearchStrategy::Bm25, 5).unwrap();
            let two = engine
                .search(&q.terms, SearchStrategy::Bm25TwoPass, 5)
                .unwrap();
            // When the first pass fills the quota its results may differ in
            // membership only if a doc missing one term outranks conjunctive
            // matches — the paper accepts this approximation. Here we check
            // the weaker, always-true property: two-pass returns `n` results
            // whenever single-pass does.
            assert_eq!(single.results.len().min(5), two.results.len().min(5));
            assert!(two.passes <= 2);
        }
    }

    #[test]
    fn materialized_f32_ranking_matches_computed() {
        let (c, idx) = setup(IndexConfig::materialized_f32());
        let engine = QueryEngine::new(&idx);
        let terms = pick_terms(&c, &idx);
        let computed = engine.search(&terms, SearchStrategy::Bm25, 10).unwrap();
        let materialized = engine
            .search(&terms, SearchStrategy::Bm25Materialized, 10)
            .unwrap();
        let a: Vec<u32> = computed.results.iter().map(|r| r.docid).collect();
        let b: Vec<u32> = materialized.results.iter().map(|r| r.docid).collect();
        assert_eq!(a, b, "materialized scores must not change the ranking");
    }

    #[test]
    fn quantized_ranking_preserves_precision() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx_f = InvertedIndex::build(&c, &IndexConfig::materialized_f32());
        let idx_q = InvertedIndex::build(&c, &IndexConfig::materialized_q8());
        let ef = QueryEngine::new(&idx_f);
        let eq = QueryEngine::new(&idx_q);
        let mut pf = 0.0;
        let mut pq = 0.0;
        for q in &c.eval_queries {
            let rf: Vec<u32> = ef
                .search(&q.terms, SearchStrategy::Bm25Materialized, 20)
                .unwrap()
                .results
                .iter()
                .map(|r| r.docid)
                .collect();
            let rq: Vec<u32> = eq
                .search(&q.terms, SearchStrategy::Bm25Materialized, 20)
                .unwrap()
                .results
                .iter()
                .map(|r| r.docid)
                .collect();
            pf += precision_at_k(&rf, &q.relevant, 20);
            pq += precision_at_k(&rq, &q.relevant, 20);
        }
        // The paper: quantization to 8 bits loses no precision (Table 2
        // even shows a tiny gain). Allow a small tolerance.
        assert!(
            (pf - pq).abs() / c.eval_queries.len() as f64 <= 0.051,
            "p@20 float {pf} vs quantized {pq}"
        );
    }

    #[test]
    fn bm25_beats_boolean_on_planted_relevance() {
        // Needs a collection large enough that conjunctive result sets are
        // dominated by *non*-relevant documents (the tiny fixture's AND sets
        // are mostly the planted docs themselves, masking the gap that
        // Table 2 shows at TREC scale).
        let c = SyntheticCollection::generate(&CollectionConfig::small());
        let idx = InvertedIndex::build(&c, &IndexConfig::uncompressed());
        let engine = QueryEngine::new(&idx);
        let mut p_bool = 0.0;
        let mut p_bm25 = 0.0;
        for q in &c.eval_queries {
            let and: Vec<u32> = engine
                .search(&q.terms, SearchStrategy::BoolAnd, 20)
                .unwrap()
                .results
                .iter()
                .map(|r| r.docid)
                .collect();
            let bm: Vec<u32> = engine
                .search(&q.terms, SearchStrategy::Bm25, 20)
                .unwrap()
                .results
                .iter()
                .map(|r| r.docid)
                .collect();
            p_bool += precision_at_k(&and, &q.relevant, 20);
            p_bm25 += precision_at_k(&bm, &q.relevant, 20);
        }
        assert!(
            p_bm25 > p_bool * 2.0,
            "BM25 p@20 sum {p_bm25} should dominate boolean {p_bool}"
        );
    }

    #[test]
    fn unknown_terms_are_inert() {
        let (_, idx) = setup(IndexConfig::uncompressed());
        let engine = QueryEngine::new(&idx);
        let resp = engine.search(&[999_999], SearchStrategy::Bm25, 10).unwrap();
        assert!(resp.results.is_empty());
        let hits = engine.search_terms(&["no-such-term"], SearchStrategy::Bm25, 10);
        assert!(hits.is_empty());
    }

    #[test]
    fn single_term_query_works_everywhere() {
        let (c, idx) = setup(IndexConfig::uncompressed());
        let engine = QueryEngine::new(&idx);
        let t = pick_terms(&c, &idx)[0];
        for strat in [
            SearchStrategy::BoolAnd,
            SearchStrategy::BoolOr,
            SearchStrategy::Bm25,
            SearchStrategy::Bm25TwoPass,
        ] {
            let resp = engine.search(&[t], strat, 5).unwrap();
            assert!(!resp.results.is_empty(), "{strat:?}");
        }
    }

    #[test]
    fn materialized_strategy_requires_materialized_index() {
        let (_, idx) = setup(IndexConfig::compressed());
        let engine = QueryEngine::new(&idx);
        assert!(engine
            .search(&[1], SearchStrategy::Bm25Materialized, 5)
            .is_err());
    }

    #[test]
    fn io_accounting_cold_vs_hot() {
        let (c, idx) = setup(IndexConfig::compressed());
        let engine = QueryEngine::new(&idx);
        let terms = pick_terms(&c, &idx);
        let cold = engine.search(&terms, SearchStrategy::Bm25, 10).unwrap();
        let hot = engine.search(&terms, SearchStrategy::Bm25, 10).unwrap();
        assert!(cold.io.reads > 0, "first touch must hit the disk model");
        assert_eq!(hot.io.reads, 0, "hot repeat must be I/O-free");
        assert_eq!(cold.results, hot.results);
    }

    #[test]
    fn results_carry_names_and_order() {
        let (c, idx) = setup(IndexConfig::uncompressed());
        let engine = QueryEngine::new(&idx);
        let terms = pick_terms(&c, &idx);
        let resp = engine.search(&terms, SearchStrategy::Bm25, 10).unwrap();
        assert!(resp.results.windows(2).all(|w| w[0].score >= w[1].score));
        for r in &resp.results {
            assert_eq!(r.name, format!("doc-{:08}", r.docid));
        }
    }

    #[test]
    fn plan_text_mirrors_paper_shapes() {
        let (_, idx) = setup(IndexConfig::uncompressed());
        let engine = QueryEngine::new(&idx);
        let txt = engine.plan_text(&["information", "retrieval"], SearchStrategy::Bm25, 20);
        assert!(txt.contains("TopN"));
        assert!(txt.contains("MergeOuterJoin"));
        assert!(txt.contains("ScanSelect( TD=TD, TD.term=\"information\" )"));
        let txt = engine.plan_text(&["a", "b"], SearchStrategy::BoolAnd, 20);
        assert!(txt.starts_with("MergeJoin"));
        assert!(!txt.contains("TopN"));
        assert_eq!(engine.plan_text(&[], SearchStrategy::Bm25, 5), "Empty");
    }

    #[test]
    fn vector_size_does_not_change_results() {
        let (c, idx) = setup(IndexConfig::compressed());
        let terms = pick_terms(&c, &idx);
        let mut baseline: Option<Vec<SearchResult>> = None;
        for vs in [1usize, 7, 64, 1024, 100_000] {
            let engine = QueryEngine::new(&idx).with_vector_size(vs);
            let resp = engine.search(&terms, SearchStrategy::Bm25, 10).unwrap();
            match &baseline {
                None => baseline = Some(resp.results),
                Some(b) => assert_eq!(&resp.results, b, "vector size {vs}"),
            }
        }
    }

    #[test]
    fn wire_tags_roundtrip_and_reject_unknown_bytes() {
        for s in SearchStrategy::ALL {
            assert_eq!(SearchStrategy::from_wire_tag(s.wire_tag()), Some(s));
        }
        // Tags are dense from 0: every byte past the ladder is rejected.
        for tag in SearchStrategy::ALL.len() as u8..=u8::MAX {
            assert_eq!(SearchStrategy::from_wire_tag(tag), None);
        }
    }

    #[test]
    fn relevant_sets_are_plausible() {
        // Sanity on the fixture itself: planted relevance is recoverable.
        let (c, idx) = setup(IndexConfig::uncompressed());
        let engine = QueryEngine::new(&idx);
        let q = &c.eval_queries[0];
        let top: Vec<u32> = engine
            .search(&q.terms, SearchStrategy::Bm25, 20)
            .unwrap()
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        let hits: HashSet<u32> = top.into_iter().collect();
        assert!(
            hits.intersection(&q.relevant).count() >= 1,
            "BM25 should surface at least one planted document"
        );
    }
}
