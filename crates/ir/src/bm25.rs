//! The Okapi BM25 retrieval model (§3.2, equations 1 and 2) and the
//! Global-By-Value score quantization of §3.3.
//!
//! Per-term document score:
//!
//! ```text
//! ω(D,T) = log(f_D / f_{T,D}) · (k1 + 1) · f_{D,T}
//!          ─────────────────────────────────────────
//!          f_{D,T} + k1 · ((1 − b) + b · |D| / avgdl)
//! ```
//!
//! with `f_D` = total documents, `f_{T,D}` = documents containing `T`,
//! `f_{D,T}` = `T`'s frequency within `D`, `|D|` = document length, and
//! `avgdl` the mean document length. A query's document score is the sum of
//! its terms' ω values (equation 1), which is what makes the weights
//! *query-independent* and hence materializable.

/// BM25 tuning constants. The paper treats `k1` and `b` as "predefined
/// constants"; we default to the standard Okapi values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (typically 1.2).
    pub k1: f32,
    /// Length-normalization strength in `[0, 1]` (typically 0.75).
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// Collection-level statistics entering the formula.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// `f_D`: number of documents.
    pub num_docs: u32,
    /// `avgdl`: average document length.
    pub avg_doc_len: f32,
}

/// `log(f_D / f_{T,D})` — the inverse-document-frequency factor, zero for
/// terms that appear nowhere (a convention that makes unknown terms inert).
pub fn idf(num_docs: u32, doc_freq: u32) -> f32 {
    if doc_freq == 0 || num_docs == 0 {
        return 0.0;
    }
    (num_docs as f32 / doc_freq as f32).ln()
}

/// The full per-term, per-document weight ω(D,T).
pub fn term_weight(
    params: Bm25Params,
    stats: CollectionStats,
    doc_freq: u32,
    tf: u32,
    doc_len: u32,
) -> f32 {
    if tf == 0 {
        return 0.0;
    }
    let idf = idf(stats.num_docs, doc_freq);
    let tf = tf as f32;
    let norm = (1.0 - params.b) + params.b * doc_len as f32 / stats.avg_doc_len;
    idf * (params.k1 + 1.0) * tf / (tf + params.k1 * norm)
}

/// Global-By-Value quantization (§3.3): maps the collection-wide range of
/// ω values `[L, U]` linearly onto integers `1..=q`.
///
/// ```text
/// ω' = ⌊ q · (ω − L) / (U − L) ⌋ + 1      (clamped to 1..=q)
/// ```
///
/// The paper uses `q = 256`, shrinking materialized scores from 32-bit
/// floats to 8 bits "without loss of precision" (ranking-wise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    /// Minimum ω in the collection.
    pub lower: f32,
    /// Maximum ω in the collection.
    pub upper: f32,
    /// Number of quantization levels.
    pub q: u32,
}

impl Quantizer {
    /// Fits a quantizer to observed weights.
    ///
    /// # Panics
    /// Panics if `q == 0`.
    pub fn fit(weights: impl IntoIterator<Item = f32>, q: u32) -> Self {
        assert!(q > 0, "quantization levels must be positive");
        let mut lower = f32::INFINITY;
        let mut upper = f32::NEG_INFINITY;
        for w in weights {
            lower = lower.min(w);
            upper = upper.max(w);
        }
        if !lower.is_finite() || !upper.is_finite() {
            // Empty input: any range works, every encode clamps to 1.
            lower = 0.0;
            upper = 1.0;
        }
        if upper <= lower {
            upper = lower + 1.0;
        }
        Quantizer { lower, upper, q }
    }

    /// Quantizes one weight into `1..=q`.
    pub fn encode(&self, w: f32) -> u32 {
        let scaled =
            (self.q as f32 * (w - self.lower) / (self.upper - self.lower)).floor() as i64 + 1;
        scaled.clamp(1, i64::from(self.q)) as u32
    }

    /// Midpoint value of a quantization level (for diagnostics; ranking
    /// needs only the integer codes).
    pub fn decode(&self, code: u32) -> f32 {
        let step = (self.upper - self.lower) / self.q as f32;
        self.lower + (code as f32 - 0.5) * step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATS: CollectionStats = CollectionStats {
        num_docs: 1000,
        avg_doc_len: 100.0,
    };

    #[test]
    fn idf_decreases_with_document_frequency() {
        assert!(idf(1000, 10) > idf(1000, 100));
        assert_eq!(idf(1000, 1000), 0.0);
        assert_eq!(idf(1000, 0), 0.0);
    }

    #[test]
    fn weight_zero_for_absent_term() {
        assert_eq!(term_weight(Bm25Params::default(), STATS, 10, 0, 100), 0.0);
    }

    #[test]
    fn weight_increases_with_tf_but_saturates() {
        let p = Bm25Params::default();
        let w1 = term_weight(p, STATS, 10, 1, 100);
        let w2 = term_weight(p, STATS, 10, 2, 100);
        let w10 = term_weight(p, STATS, 10, 10, 100);
        let w100 = term_weight(p, STATS, 10, 100, 100);
        assert!(w2 > w1);
        assert!(w10 > w2);
        // Saturation: the step from 10 to 100 is smaller than 10x.
        assert!(w100 < w10 * 3.0);
        // Upper bound: (k1+1) * idf.
        assert!(w100 < (p.k1 + 1.0) * idf(1000, 10));
    }

    #[test]
    fn longer_documents_penalized() {
        let p = Bm25Params::default();
        let short = term_weight(p, STATS, 10, 3, 50);
        let long = term_weight(p, STATS, 10, 3, 500);
        assert!(short > long);
    }

    #[test]
    fn b_zero_disables_length_normalization() {
        let p = Bm25Params { k1: 1.2, b: 0.0 };
        let short = term_weight(p, STATS, 10, 3, 50);
        let long = term_weight(p, STATS, 10, 3, 500);
        assert_eq!(short, long);
    }

    #[test]
    fn rare_terms_weigh_more() {
        let p = Bm25Params::default();
        let rare = term_weight(p, STATS, 5, 3, 100);
        let common = term_weight(p, STATS, 500, 3, 100);
        assert!(rare > common);
    }

    #[test]
    fn quantizer_fits_range_and_clamps() {
        let qz = Quantizer::fit([0.0f32, 5.0, 10.0], 256);
        assert_eq!(qz.encode(0.0), 1);
        assert_eq!(qz.encode(10.0), 256);
        assert_eq!(qz.encode(-99.0), 1);
        assert_eq!(qz.encode(99.0), 256);
        let mid = qz.encode(5.0);
        assert!((120..=136).contains(&mid), "{mid}");
    }

    #[test]
    fn quantization_is_monotone() {
        let qz = Quantizer::fit([0.0f32, 1.0], 256);
        let mut prev = 0;
        for i in 0..=100 {
            let code = qz.encode(i as f32 / 100.0);
            assert!(code >= prev, "monotonicity violated at {i}");
            prev = code;
        }
    }

    #[test]
    fn quantizer_handles_degenerate_ranges() {
        let qz = Quantizer::fit([2.5f32, 2.5], 256);
        assert_eq!(qz.encode(2.5), 1);
        let qz = Quantizer::fit(std::iter::empty(), 8);
        assert_eq!(qz.encode(0.5), 5); // arbitrary but valid and in range
    }

    #[test]
    fn decode_is_inside_level() {
        let qz = Quantizer::fit([0.0f32, 256.0], 256);
        for code in [1u32, 77, 256] {
            let mid = qz.decode(code);
            assert_eq!(qz.encode(mid), code);
        }
    }

    #[test]
    fn quantized_order_preserves_ranking_mostly() {
        // Ranking by quantized sums must track ranking by float sums for
        // well-separated scores (the "no loss of precision" claim).
        let qz = Quantizer::fit((0..1000).map(|i| i as f32 * 0.01), 256);
        let a = 3.0f32;
        let b = 5.0f32;
        assert!(qz.encode(a) < qz.encode(b));
    }
}
