//! Nested boolean queries — the paper's `"information AND (storing OR
//! retrieval)"` example (§3.2).
//!
//! "Such a boolean retrieval approach can be formulated in relational
//! algebra as a series of join operations over inverted lists, with boolean
//! AND and OR mapping to Join and OuterJoin respectively":
//!
//! ```text
//! Join(
//!   ScanSelect( TD1=TD, TD1.term="information" ),
//!   OuterJoin(
//!     ScanSelect( TD2=TD, TD2.term="storing" ),
//!     ScanSelect( TD3=TD, TD3.term="retrieval" )))
//! ```
//!
//! [`BooleanQuery`] is the expression tree, [`parse`] a small query-string
//! parser (conventional precedence: `AND` binds tighter than `OR`,
//! parentheses override), and [`crate::QueryEngine::search_boolean`]
//! compiles the tree to exactly the nested plan above.
//!
//! Semantics note: unlike the flat ranked API (where unknown terms are
//! inert), boolean semantics are strict — a term matching nothing makes an
//! `AND` branch empty, as it should.

use std::fmt;

/// A nested boolean keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BooleanQuery {
    /// A single keyword.
    Term(String),
    /// All branches must match (maps to `MergeJoin`).
    And(Vec<BooleanQuery>),
    /// Any branch may match (maps to `MergeOuterJoin`).
    Or(Vec<BooleanQuery>),
}

impl BooleanQuery {
    /// A term leaf.
    pub fn term(t: impl Into<String>) -> Self {
        BooleanQuery::Term(t.into())
    }

    /// Conjunction of sub-queries.
    pub fn and(parts: Vec<BooleanQuery>) -> Self {
        BooleanQuery::And(parts)
    }

    /// Disjunction of sub-queries.
    pub fn or(parts: Vec<BooleanQuery>) -> Self {
        BooleanQuery::Or(parts)
    }

    /// All distinct terms mentioned, in first-appearance order.
    pub fn terms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            BooleanQuery::Term(t) => {
                if !out.contains(&t.as_str()) {
                    out.push(t);
                }
            }
            BooleanQuery::And(parts) | BooleanQuery::Or(parts) => {
                for p in parts {
                    p.collect_terms(out);
                }
            }
        }
    }

    /// Renders the paper-style relational plan for this query.
    pub fn plan_text(&self) -> String {
        match self {
            BooleanQuery::Term(t) => format!("ScanSelect( TD=TD, TD.term=\"{t}\" )"),
            BooleanQuery::And(parts) => nest("Join", parts),
            BooleanQuery::Or(parts) => nest("OuterJoin", parts),
        }
    }
}

fn nest(op: &str, parts: &[BooleanQuery]) -> String {
    match parts {
        [] => "Empty".to_owned(),
        [one] => one.plan_text(),
        [head, tail @ ..] => {
            let right = nest(op, tail);
            let left = head.plan_text();
            format!("{op}(\n  {},\n  {})", indent(&left), indent(&right))
        }
    }
}

fn indent(s: &str) -> String {
    s.replace('\n', "\n  ")
}

impl fmt::Display for BooleanQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BooleanQuery::Term(t) => f.write_str(t),
            BooleanQuery::And(parts) => write_infix(f, parts, " AND "),
            BooleanQuery::Or(parts) => write_infix(f, parts, " OR "),
        }
    }
}

fn write_infix(f: &mut fmt::Formatter<'_>, parts: &[BooleanQuery], op: &str) -> fmt::Result {
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            f.write_str(op)?;
        }
        match p {
            BooleanQuery::Term(_) => write!(f, "{p}")?,
            _ => write!(f, "({p})")?,
        }
    }
    Ok(())
}

/// Parse error for boolean query strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Token index where it went wrong.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at token {})", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses `"information AND (storing OR retrieval)"`-style query strings.
///
/// Grammar (conventional precedence — `AND` binds tighter than `OR`;
/// `AND`/`OR` are case-insensitive keywords, anything else is a term):
///
/// ```text
/// query  := andExpr ( OR  andExpr )*
/// andExpr:= atom    ( AND atom    )*
/// atom   := TERM | '(' query ')'
/// ```
pub fn parse(input: &str) -> Result<BooleanQuery, ParseError> {
    let tokens = tokenize(input);
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_or()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            message: format!("unexpected trailing input '{}'", p.tokens[p.pos]),
            at: p.pos,
        });
    }
    Ok(q)
}

fn tokenize(input: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in input.chars() {
        match ch {
            '(' | ')' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn parse_or(&mut self) -> Result<BooleanQuery, ParseError> {
        let mut parts = vec![self.parse_and()?];
        while self.peek().is_some_and(|t| t.eq_ignore_ascii_case("or")) {
            self.pos += 1;
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            BooleanQuery::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<BooleanQuery, ParseError> {
        let mut parts = vec![self.parse_atom()?];
        while self.peek().is_some_and(|t| t.eq_ignore_ascii_case("and")) {
            self.pos += 1;
            parts.push(self.parse_atom()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            BooleanQuery::And(parts)
        })
    }

    fn parse_atom(&mut self) -> Result<BooleanQuery, ParseError> {
        match self.peek() {
            None => Err(ParseError {
                message: "expected a term or '('".into(),
                at: self.pos,
            }),
            Some("(") => {
                self.pos += 1;
                let inner = self.parse_or()?;
                if self.peek() != Some(")") {
                    return Err(ParseError {
                        message: "expected ')'".into(),
                        at: self.pos,
                    });
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(")") => Err(ParseError {
                message: "unexpected ')'".into(),
                at: self.pos,
            }),
            Some(t) if t.eq_ignore_ascii_case("and") || t.eq_ignore_ascii_case("or") => {
                Err(ParseError {
                    message: format!("operator '{t}' where a term was expected"),
                    at: self.pos,
                })
            }
            Some(t) => {
                let term = BooleanQuery::term(t);
                self.pos += 1;
                Ok(term)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        let q = parse("information AND (storing OR retrieval)").unwrap();
        assert_eq!(
            q,
            BooleanQuery::and(vec![
                BooleanQuery::term("information"),
                BooleanQuery::or(vec![
                    BooleanQuery::term("storing"),
                    BooleanQuery::term("retrieval"),
                ]),
            ])
        );
        let plan = q.plan_text();
        assert!(plan.starts_with("Join("));
        assert!(plan.contains("OuterJoin("));
        assert!(plan.contains("TD.term=\"storing\""));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = parse("a OR b AND c").unwrap();
        assert_eq!(
            q,
            BooleanQuery::or(vec![
                BooleanQuery::term("a"),
                BooleanQuery::and(vec![BooleanQuery::term("b"), BooleanQuery::term("c")]),
            ])
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(parse("a and b").unwrap(), parse("a AND b").unwrap());
        assert_eq!(parse("a or b").unwrap(), parse("a OR b").unwrap());
    }

    #[test]
    fn single_term_and_nesting() {
        assert_eq!(parse("hello").unwrap(), BooleanQuery::term("hello"));
        assert_eq!(parse("((hello))").unwrap(), BooleanQuery::term("hello"));
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in [
            "information AND (storing OR retrieval)",
            "a OR (b AND c) OR d",
            "x",
            "(a OR b) AND (c OR d) AND e",
        ] {
            let q = parse(s).unwrap();
            let rendered = q.to_string();
            assert_eq!(parse(&rendered).unwrap(), q, "{s} -> {rendered}");
        }
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(parse("").is_err());
        assert!(parse("a AND").is_err());
        assert!(parse("(a OR b").is_err());
        assert!(parse("a b) c").is_err());
        assert!(parse("AND a").is_err());
        let e = parse("a AND AND b").unwrap_err();
        assert!(e.to_string().contains("operator"));
    }

    #[test]
    fn terms_deduplicated_in_order() {
        let q = parse("a AND (b OR a) AND c").unwrap();
        assert_eq!(q.terms(), vec!["a", "b", "c"]);
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::engine::{QueryEngine, SearchStrategy};
    use crate::index::{IndexConfig, InvertedIndex};
    use std::collections::BTreeSet;
    use x100_corpus::{CollectionConfig, SyntheticCollection};

    fn setup() -> (SyntheticCollection, InvertedIndex) {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
        (c, idx)
    }

    /// Reference evaluator: recursive set semantics over the raw collection.
    fn eval_sets(c: &SyntheticCollection, q: &BooleanQuery) -> BTreeSet<u32> {
        match q {
            BooleanQuery::Term(t) => {
                let Some(tid) = c.vocab.iter().position(|v| v == t) else {
                    return BTreeSet::new();
                };
                c.docs
                    .iter()
                    .filter(|d| {
                        d.terms
                            .binary_search_by_key(&(tid as u32), |&(t2, _)| t2)
                            .is_ok()
                    })
                    .map(|d| d.id)
                    .collect()
            }
            BooleanQuery::And(parts) => {
                let mut iter = parts.iter();
                let mut acc = iter.next().map(|p| eval_sets(c, p)).unwrap_or_default();
                for p in iter {
                    let s = eval_sets(c, p);
                    acc = acc.intersection(&s).copied().collect();
                }
                acc
            }
            BooleanQuery::Or(parts) => {
                let mut acc = BTreeSet::new();
                for p in parts {
                    acc.extend(eval_sets(c, p));
                }
                acc
            }
        }
    }

    #[test]
    fn nested_query_matches_set_semantics() {
        let (c, idx) = setup();
        let engine = QueryEngine::new(&idx);
        let queries = [
            "term5 AND (term9 OR term14)",
            "(term5 OR term6) AND (term9 OR term14) AND term3",
            "term5 OR (term6 AND term7) OR term8",
            "term5",
        ];
        for s in queries {
            let q = parse(s).unwrap();
            let got: Vec<u32> = engine
                .search_boolean(&q, usize::MAX)
                .unwrap()
                .results
                .iter()
                .map(|r| r.docid)
                .collect();
            let expect: Vec<u32> = eval_sets(&c, &q).into_iter().collect();
            assert_eq!(got, expect, "{s}");
        }
    }

    #[test]
    fn flat_and_agrees_with_strategy_bool_and() {
        let (c, idx) = setup();
        let engine = QueryEngine::new(&idx);
        let q = &c.eval_queries[0];
        let tree = BooleanQuery::and(
            q.terms
                .iter()
                .map(|&t| BooleanQuery::term(format!("term{t}")))
                .collect(),
        );
        let via_tree: Vec<u32> = engine
            .search_boolean(&tree, c.docs.len())
            .unwrap()
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        let via_flat: Vec<u32> = engine
            .search(&q.terms, SearchStrategy::BoolAnd, c.docs.len())
            .unwrap()
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        assert_eq!(via_tree, via_flat);
    }

    #[test]
    fn unknown_term_is_strict_in_and_inert_in_or() {
        let (c, idx) = setup();
        let engine = QueryEngine::new(&idx);
        let and = parse("term5 AND no-such-term").unwrap();
        assert!(engine.search_boolean(&and, 100).unwrap().results.is_empty());
        let or = parse("term5 OR no-such-term").unwrap();
        let or_hits = engine.search_boolean(&or, usize::MAX).unwrap().results;
        let solo = eval_sets(&c, &BooleanQuery::term("term5"));
        assert_eq!(or_hits.len(), solo.len());
    }

    #[test]
    fn empty_node_is_a_plan_error() {
        let (_, idx) = setup();
        let engine = QueryEngine::new(&idx);
        assert!(engine
            .search_boolean(&BooleanQuery::And(vec![]), 10)
            .is_err());
    }
}
