//! The inverted index as relational tables (§3.1).
//!
//! "To index the data, we used an inverted list data-structure, represented
//! by a relational table. This `[term, docid, tf]` (TD) table ... is ordered
//! on (term, docid), which allows the term column to be replaced by a range
//! index onto `[docid, tf]`". Alongside TD live the document table
//! `D[docid, name, length]` and per-term statistics `T[term, ftd]`.
//!
//! Index variants reproduce the Table 2 ladder:
//!
//! * `compress = false` → raw 32-bit `docid`/`tf` columns (runs BoolAND,
//!   BoolOR, BM25, BM25T);
//! * `compress = true` → `docid` as PFOR-DELTA and `tf` as PFOR, both with
//!   8-bit code words, matching §3.3's "11.98 and 8.13 bits per tuple"
//!   setup (run BM25TC);
//! * [`Materialize::F32`] → adds a precomputed 32-bit ω score column
//!   (run BM25TCM — note this *increases* I/O volume vs compressed tf);
//! * [`Materialize::Quantized8`] → adds an 8-bit Global-By-Value quantized
//!   score column (run BM25TCMQ8).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use x100_compress::Codec;
use x100_corpus::SyntheticCollection;
use x100_storage::{Column, ColumnBuilder, StringColumn, Table};

use crate::bm25::{term_weight, Bm25Params, CollectionStats, Quantizer};

/// Which materialized score column to build (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Materialize {
    /// No score materialization.
    #[default]
    None,
    /// 32-bit float ω values (stored bit-cast in a raw u32 column; floats
    /// do not benefit from integer compression, which is exactly why the
    /// paper's BM25TCM cold run regressed).
    F32,
    /// 8-bit Global-By-Value quantized scores, PFOR-compressed.
    Quantized8,
}

/// Index build configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexConfig {
    /// Compress `docid` (PFOR-DELTA/8) and `tf` (PFOR/8) columns.
    pub compress: bool,
    /// Score materialization variant.
    pub materialize: Materialize,
    /// BM25 constants used for materialization (must match query-time
    /// parameters, since materialized scores bake them in).
    pub params: Bm25Params,
    /// Storage block size in values.
    pub block_size: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            compress: true,
            materialize: Materialize::None,
            params: Bm25Params::default(),
            block_size: 1 << 18, // 256 Ki values = 1 MB uncompressed
        }
    }
}

impl IndexConfig {
    /// The uncompressed baseline (runs BoolAND / BoolOR / BM25 / BM25T).
    pub fn uncompressed() -> Self {
        IndexConfig {
            compress: false,
            ..Default::default()
        }
    }

    /// Compressed index (run BM25TC).
    pub fn compressed() -> Self {
        IndexConfig::default()
    }

    /// Compressed + materialized f32 scores (run BM25TCM).
    pub fn materialized_f32() -> Self {
        IndexConfig {
            materialize: Materialize::F32,
            ..Default::default()
        }
    }

    /// Compressed + 8-bit quantized materialized scores (run BM25TCMQ8).
    pub fn materialized_q8() -> Self {
        IndexConfig {
            materialize: Materialize::Quantized8,
            ..Default::default()
        }
    }
}

/// The built index: TD/D/T tables plus the range index and lookup state.
#[derive(Debug)]
pub struct InvertedIndex {
    config: IndexConfig,
    /// TD table: `docid`, `tf`, and optionally `score` columns, ordered by
    /// (term, docid).
    td: Table,
    /// Range index replacing the term column: `term_ranges[t]` is the row
    /// range of term `t`'s posting list in TD.
    term_ranges: Vec<Range<usize>>,
    /// D table metadata, docid-indexed.
    doc_names: StringColumn,
    doc_lens: Arc<Vec<i32>>,
    /// T table: per-term document frequencies (`ftd`).
    doc_freqs: Vec<u32>,
    /// Term string -> id.
    term_dict: HashMap<String, u32>,
    stats: CollectionStats,
    quantizer: Option<Quantizer>,
}

impl InvertedIndex {
    /// Builds the index from a materialized collection.
    ///
    /// Equivalent to pushing every document through a
    /// [`crate::StreamingIndexBuilder`] — which is exactly how it is
    /// implemented; the streaming path is the only build path.
    pub fn build(collection: &SyntheticCollection, config: &IndexConfig) -> Self {
        let mut builder =
            crate::builder::StreamingIndexBuilder::new(collection.vocab.len(), config);
        builder.push_docs(&collection.docs);
        builder.finish(&collection.vocab)
    }

    /// Assembles an index from (term, docid)-sorted posting columns — the
    /// shared back half of the batch and streaming build paths.
    ///
    /// `offsets[t]..offsets[t + 1]` must be term `t`'s row range in
    /// `docid_col`/`tf_col`, with docids ascending within each range.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_postings(
        config: IndexConfig,
        vocab: &[String],
        doc_names: Vec<String>,
        doc_lens: Vec<i32>,
        doc_freqs: Vec<u32>,
        offsets: Vec<usize>,
        docid_col: Vec<u32>,
        tf_col: Vec<u32>,
    ) -> Self {
        let num_terms = vocab.len();
        let num_docs = doc_lens.len();
        let total_postings = docid_col.len();

        let doc_lens: Arc<Vec<i32>> = Arc::new(doc_lens);
        let avg_doc_len = if num_docs == 0 {
            1.0
        } else {
            doc_lens.iter().map(|&l| l as f64).sum::<f64>() as f32 / num_docs as f32
        };
        let stats = CollectionStats {
            num_docs: num_docs as u32,
            avg_doc_len,
        };

        // Build the TD table columns.
        let (docid_codec, tf_codec) = if config.compress {
            (Codec::PforDelta { width: 8 }, Codec::Pfor { width: 8 })
        } else {
            (Codec::Raw, Codec::Raw)
        };
        let mut td = Table::new("TD");
        td.add_column(build_column(
            "docid",
            docid_codec,
            &docid_col,
            config.block_size,
        ));
        td.add_column(build_column("tf", tf_codec, &tf_col, config.block_size));

        // Optional score materialization (§3.3): ω is query-independent
        // once k1 and b are fixed.
        let mut quantizer = None;
        if config.materialize != Materialize::None {
            let weights = |i: usize| {
                let t = term_of_slot(&offsets, i);
                term_weight(
                    config.params,
                    stats,
                    doc_freqs[t],
                    tf_col[i],
                    doc_lens[docid_col[i] as usize] as u32,
                )
            };
            match config.materialize {
                Materialize::F32 => {
                    let bits: Vec<u32> =
                        (0..total_postings).map(|i| weights(i).to_bits()).collect();
                    td.add_column(build_column("score", Codec::Raw, &bits, config.block_size));
                }
                Materialize::Quantized8 => {
                    let qz = Quantizer::fit((0..total_postings).map(weights), 256);
                    let codes: Vec<u32> =
                        (0..total_postings).map(|i| qz.encode(weights(i))).collect();
                    td.add_column(build_column(
                        "score",
                        Codec::Pfor { width: 8 },
                        &codes,
                        config.block_size,
                    ));
                    quantizer = Some(qz);
                }
                Materialize::None => unreachable!(),
            }
        }

        let term_ranges = (0..num_terms).map(|t| offsets[t]..offsets[t + 1]).collect();
        let term_dict = vocab
            .iter()
            .enumerate()
            .map(|(t, s)| (s.clone(), t as u32))
            .collect();
        let doc_names = StringColumn::new("name", doc_names);

        InvertedIndex {
            config,
            td,
            term_ranges,
            doc_names,
            doc_lens,
            doc_freqs,
            term_dict,
            stats,
            quantizer,
        }
    }

    /// The build configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The TD table (docid/tf/score columns).
    pub fn td(&self) -> &Table {
        &self.td
    }

    /// TD row range of a term's posting list (empty for unseen terms).
    pub fn term_range(&self, term: u32) -> Range<usize> {
        self.term_ranges.get(term as usize).cloned().unwrap_or(0..0)
    }

    /// Resolves a term string to its id.
    pub fn term_id(&self, term: &str) -> Option<u32> {
        self.term_dict.get(term).copied()
    }

    /// `ftd`: number of documents containing the term.
    pub fn doc_freq(&self, term: u32) -> u32 {
        self.doc_freqs.get(term as usize).copied().unwrap_or(0)
    }

    /// Document name by docid.
    pub fn doc_name(&self, docid: u32) -> Option<&str> {
        self.doc_names.get(docid as usize)
    }

    /// Dense docid-indexed document lengths (the D table's `length`).
    pub fn doc_lens(&self) -> &Arc<Vec<i32>> {
        &self.doc_lens
    }

    /// Collection statistics for BM25.
    pub fn stats(&self) -> CollectionStats {
        self.stats
    }

    /// The fitted quantizer, when `Materialize::Quantized8` was used.
    pub fn quantizer(&self) -> Option<&Quantizer> {
        self.quantizer.as_ref()
    }

    /// Whether a materialized score column exists.
    pub fn has_materialized_scores(&self) -> bool {
        self.config.materialize != Materialize::None
    }

    /// Number of postings (TD rows).
    pub fn num_postings(&self) -> usize {
        self.td.row_count()
    }

    /// Bits per tuple of the named TD column — the §3.3 accounting.
    pub fn column_bits_per_tuple(&self, name: &str) -> f64 {
        self.td
            .column(name)
            .map(|c| c.bits_per_value())
            .unwrap_or(f64::NAN)
    }
}

fn build_column(name: &str, codec: Codec, values: &[u32], block_size: usize) -> Column {
    let mut b = ColumnBuilder::with_block_size(name, codec, block_size);
    b.extend(values);
    b.finish()
}

/// Maps a TD row index back to its term id via the offsets table.
fn term_of_slot(offsets: &[usize], slot: usize) -> usize {
    offsets.partition_point(|&o| o <= slot) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_corpus::CollectionConfig;

    fn tiny_index(config: IndexConfig) -> (SyntheticCollection, InvertedIndex) {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &config);
        (c, idx)
    }

    #[test]
    fn postings_sorted_by_term_then_docid() {
        let (c, idx) = tiny_index(IndexConfig::uncompressed());
        let docids = idx.td().column("docid").unwrap().read_all();
        for t in 0..c.vocab.len() as u32 {
            let r = idx.term_range(t);
            let list = &docids[r.clone()];
            assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "term {t} posting list not strictly increasing"
            );
            assert_eq!(list.len(), idx.doc_freq(t) as usize);
        }
    }

    #[test]
    fn posting_lists_match_source_documents() {
        let (c, idx) = tiny_index(IndexConfig::uncompressed());
        let docids = idx.td().column("docid").unwrap().read_all();
        let tfs = idx.td().column("tf").unwrap().read_all();
        // Spot-check every posting of a mid-frequency term.
        let term = 10u32;
        let r = idx.term_range(term);
        for i in r {
            let (d, tf) = (docids[i], tfs[i]);
            let doc = &c.docs[d as usize];
            let found = doc
                .terms
                .binary_search_by_key(&term, |&(t, _)| t)
                .map(|j| doc.terms[j].1)
                .unwrap();
            assert_eq!(found, tf);
        }
    }

    #[test]
    fn compressed_and_raw_indexes_agree() {
        let (_, raw) = tiny_index(IndexConfig::uncompressed());
        let (_, comp) = tiny_index(IndexConfig::compressed());
        assert_eq!(
            raw.td().column("docid").unwrap().read_all(),
            comp.td().column("docid").unwrap().read_all()
        );
        assert_eq!(
            raw.td().column("tf").unwrap().read_all(),
            comp.td().column("tf").unwrap().read_all()
        );
    }

    #[test]
    fn compression_shrinks_hot_columns() {
        let (_, comp) = tiny_index(IndexConfig::compressed());
        assert!(comp.column_bits_per_tuple("docid") < 16.0);
        assert!(comp.column_bits_per_tuple("tf") < 10.0);
    }

    #[test]
    fn term_dictionary_resolves() {
        let (_, idx) = tiny_index(IndexConfig::uncompressed());
        assert_eq!(idx.term_id("term3"), Some(3));
        assert_eq!(idx.term_id("no-such-term"), None);
        assert_eq!(idx.term_range(9999), 0..0);
        assert_eq!(idx.doc_freq(9999), 0);
    }

    #[test]
    fn doc_metadata_accessible() {
        let (c, idx) = tiny_index(IndexConfig::uncompressed());
        assert_eq!(idx.doc_name(0), Some("doc-00000000"));
        assert_eq!(idx.doc_lens().len(), c.docs.len());
        assert_eq!(idx.doc_lens()[5], c.docs[5].len as i32);
        let avg = idx.stats().avg_doc_len;
        assert!((avg as f64 - c.avg_doc_len()).abs() < 1.0);
    }

    #[test]
    fn materialized_f32_scores_match_formula() {
        let (_, idx) = tiny_index(IndexConfig::materialized_f32());
        let bits = idx.td().column("score").unwrap().read_all();
        let docids = idx.td().column("docid").unwrap().read_all();
        let tfs = idx.td().column("tf").unwrap().read_all();
        let term = 10u32;
        let r = idx.term_range(term);
        for i in r {
            let expect = term_weight(
                idx.config().params,
                idx.stats(),
                idx.doc_freq(term),
                tfs[i],
                idx.doc_lens()[docids[i] as usize] as u32,
            );
            assert_eq!(f32::from_bits(bits[i]), expect, "slot {i}");
        }
    }

    #[test]
    fn quantized_scores_in_range_and_monotone_per_doc() {
        let (_, idx) = tiny_index(IndexConfig::materialized_q8());
        let codes = idx.td().column("score").unwrap().read_all();
        assert!(codes.iter().all(|&c| (1..=256).contains(&c)));
        assert!(idx.quantizer().is_some());
    }

    #[test]
    fn term_of_slot_inverts_offsets() {
        let offsets = vec![0usize, 3, 3, 7, 10];
        assert_eq!(term_of_slot(&offsets, 0), 0);
        assert_eq!(term_of_slot(&offsets, 2), 0);
        assert_eq!(term_of_slot(&offsets, 3), 2); // term 1 is empty
        assert_eq!(term_of_slot(&offsets, 6), 2);
        assert_eq!(term_of_slot(&offsets, 9), 3);
    }

    #[test]
    fn empty_collection_builds() {
        let mut cfg = CollectionConfig::tiny();
        cfg.num_docs = 0;
        cfg.num_eval_queries = 0;
        cfg.relevant_per_query = 0;
        let c = SyntheticCollection::generate(&cfg);
        let idx = InvertedIndex::build(&c, &IndexConfig::default());
        assert_eq!(idx.num_postings(), 0);
        assert_eq!(idx.term_range(0), 0..0);
    }
}
