//! The inverted index as relational tables (§3.1).
//!
//! "To index the data, we used an inverted list data-structure, represented
//! by a relational table. This `[term, docid, tf]` (TD) table ... is ordered
//! on (term, docid), which allows the term column to be replaced by a range
//! index onto `[docid, tf]`". Alongside TD live the document table
//! `D[docid, name, length]` and per-term statistics `T[term, ftd]`.
//!
//! Index variants reproduce the Table 2 ladder:
//!
//! * `compress = false` → raw 32-bit `docid`/`tf` columns (runs BoolAND,
//!   BoolOR, BM25, BM25T);
//! * `compress = true` → `docid` as PFOR-DELTA and `tf` as PFOR, both with
//!   8-bit code words, matching §3.3's "11.98 and 8.13 bits per tuple"
//!   setup (run BM25TC);
//! * [`Materialize::F32`] → adds a precomputed 32-bit ω score column
//!   (run BM25TCM — note this *increases* I/O volume vs compressed tf);
//! * [`Materialize::Quantized8`] → adds an 8-bit Global-By-Value quantized
//!   score column (run BM25TCMQ8).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use x100_compress::Codec;
use x100_corpus::SyntheticCollection;
use x100_storage::{Column, ColumnBuilder, StringColumn, Table};

use crate::bm25::{term_weight, Bm25Params, CollectionStats, Quantizer};
use crate::columns::{IndexColumns, BLOCK_MAX_SLOTS};
use crate::paged::{PagedMetadata, PAGE_VALUES};

/// Which materialized score column to build (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Materialize {
    /// No score materialization.
    #[default]
    None,
    /// 32-bit float ω values (stored bit-cast in a raw u32 column; floats
    /// do not benefit from integer compression, which is exactly why the
    /// paper's BM25TCM cold run regressed).
    F32,
    /// 8-bit Global-By-Value quantized scores, PFOR-compressed.
    Quantized8,
}

/// Index build configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexConfig {
    /// Compress `docid` (PFOR-DELTA/8) and `tf` (PFOR/8) columns.
    pub compress: bool,
    /// Score materialization variant.
    pub materialize: Materialize,
    /// BM25 constants used for materialization (must match query-time
    /// parameters, since materialized scores bake them in).
    pub params: Bm25Params,
    /// Storage block size in values.
    pub block_size: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            compress: true,
            materialize: Materialize::None,
            params: Bm25Params::default(),
            block_size: 1 << 18, // 256 Ki values = 1 MB uncompressed
        }
    }
}

impl IndexConfig {
    /// The uncompressed baseline (runs BoolAND / BoolOR / BM25 / BM25T).
    pub fn uncompressed() -> Self {
        IndexConfig {
            compress: false,
            ..Default::default()
        }
    }

    /// Compressed index (run BM25TC).
    pub fn compressed() -> Self {
        IndexConfig::default()
    }

    /// Compressed + materialized f32 scores (run BM25TCM).
    pub fn materialized_f32() -> Self {
        IndexConfig {
            materialize: Materialize::F32,
            ..Default::default()
        }
    }

    /// Compressed + 8-bit quantized materialized scores (run BM25TCMQ8).
    pub fn materialized_q8() -> Self {
        IndexConfig {
            materialize: Materialize::Quantized8,
            ..Default::default()
        }
    }
}

/// The built index: TD/D/T tables plus the range index and lookup state.
#[derive(Debug)]
pub struct InvertedIndex {
    config: IndexConfig,
    /// TD table: `docid`, `tf`, and optionally `score` columns, ordered by
    /// (term, docid).
    td: Table,
    /// The D and T tables plus the term range index — dense in-memory
    /// arrays for a built index, paged columns for a reopened segment.
    meta: Metadata,
    num_terms: usize,
    stats: CollectionStats,
    quantizer: Option<Quantizer>,
    /// Per-stride block-max metadata for dynamic pruning: a raw u32 column
    /// of [`BLOCK_MAX_SLOTS`]-slot entries (max tf, min doc length, max
    /// materialized score payload, max docid), one per 128-value posting
    /// stride.
    /// `None` for segments written before the section existed — queries
    /// then run exhaustively.
    block_max: Option<Column>,
}

/// Where an index's metadata lives.
#[derive(Debug)]
enum Metadata {
    /// Built in memory: dense docid/term-indexed arrays.
    Mem(MemMetadata),
    /// Reopened from a segment: disk-backed columns behind the buffer
    /// pool, with only fence keys and page directories resident.
    Paged(Box<PagedMetadata>),
}

#[derive(Debug)]
struct MemMetadata {
    /// Range index replacing the term column: `term_ranges[t]` is the row
    /// range of term `t`'s posting list in TD.
    term_ranges: Vec<Range<usize>>,
    /// D table metadata, docid-indexed.
    doc_names: StringColumn,
    doc_lens: Arc<Vec<i32>>,
    /// T table: per-term document frequencies (`ftd`).
    doc_freqs: Vec<u32>,
    /// Term string -> id.
    term_dict: HashMap<String, u32>,
}

/// A borrowed view of the metadata the hot path reads per batch: term
/// ranges, document frequencies and document lengths. The `Mem` arm indexes
/// dense slices; the `Paged` arm reads through pinned block windows owned
/// by the caller's [`crate::QueryScratch`].
pub(crate) enum MetaView<'a> {
    Mem {
        term_ranges: &'a [Range<usize>],
        doc_freqs: &'a [u32],
        doc_lens: &'a [i32],
    },
    Paged {
        offsets: &'a Column,
        doc_freqs: &'a Column,
        doc_lens: &'a Column,
        num_postings: usize,
        num_terms: usize,
    },
}

impl InvertedIndex {
    /// Builds the index from a materialized collection.
    ///
    /// Equivalent to pushing every document through a
    /// [`crate::StreamingIndexBuilder`] — which is exactly how it is
    /// implemented; the streaming path is the only build path.
    pub fn build(collection: &SyntheticCollection, config: &IndexConfig) -> Self {
        let mut builder =
            crate::builder::StreamingIndexBuilder::new(collection.vocab.len(), config);
        builder.push_docs(&collection.docs);
        builder.finish(&collection.vocab)
    }

    /// Assembles an index from already-compressed, (term, docid)-sorted
    /// posting columns — the shared back half of every build path, fed by
    /// [`crate::IndexColumnsWriter`] so no uncompressed posting column is
    /// ever materialized.
    ///
    /// Score materialization (when configured) streams over the compressed
    /// columns one block pair at a time, so its residency is O(block), not
    /// O(postings); the fitted quantizer and every score are bit-identical
    /// to what the old whole-column pass produced (same weights in the same
    /// order).
    pub(crate) fn from_columns(
        config: IndexConfig,
        vocab: &[String],
        doc_names: StringColumn,
        doc_lens: Vec<i32>,
        cols: IndexColumns,
    ) -> Self {
        let IndexColumns {
            docid,
            tf,
            doc_freqs,
            offsets,
            mut block_max,
        } = cols;
        let num_terms = vocab.len();
        let num_docs = doc_lens.len();

        let doc_lens: Arc<Vec<i32>> = Arc::new(doc_lens);
        let avg_doc_len = if num_docs == 0 {
            1.0
        } else {
            doc_lens.iter().map(|&l| l as f64).sum::<f64>() as f32 / num_docs as f32
        };
        let stats = CollectionStats {
            num_docs: num_docs as u32,
            avg_doc_len,
        };

        // Optional score materialization (§3.3): ω is query-independent
        // once k1 and b are fixed, and every input (doc_freqs, doc_lens,
        // collection stats) is known by the time the posting columns are
        // sealed — so the score column streams off the compressed blocks.
        let mut quantizer = None;
        let mut score_col = None;
        if config.materialize != Materialize::None {
            let weight_of = |t: usize, d: u32, f: u32| {
                term_weight(
                    config.params,
                    stats,
                    doc_freqs[t],
                    f,
                    doc_lens[d as usize] as u32,
                )
            };
            // The block-max score slot rides the same streaming pass:
            // strides are 128 rows, so `row / stride` addresses the entry
            // the writer opened for this posting.
            let slot_of =
                |row: usize| (row / x100_compress::ENTRY_POINT_STRIDE) * BLOCK_MAX_SLOTS + 2;
            match config.materialize {
                Materialize::F32 => {
                    let mut b =
                        ColumnBuilder::with_block_size("score", Codec::Raw, config.block_size);
                    for (row, (t, d, f)) in PostingStream::new(&docid, &tf, &offsets).enumerate() {
                        let bits = weight_of(t, d, f).to_bits();
                        b.push(bits);
                        // ω ≥ 0, so the u32 bit order is the float order and
                        // a bitwise max is an exact float max.
                        let s = slot_of(row);
                        block_max[s] = block_max[s].max(bits);
                    }
                    score_col = Some(b.finish());
                }
                Materialize::Quantized8 => {
                    // Two streaming passes: fit the global quantizer, then
                    // encode. Same weight sequence as fitting over a
                    // materialized column, hence the same quantizer.
                    let qz = Quantizer::fit(
                        PostingStream::new(&docid, &tf, &offsets)
                            .map(|(t, d, f)| weight_of(t, d, f)),
                        256,
                    );
                    let mut b = ColumnBuilder::with_block_size(
                        "score",
                        Codec::Pfor { width: 8 },
                        config.block_size,
                    );
                    for (row, (t, d, f)) in PostingStream::new(&docid, &tf, &offsets).enumerate() {
                        let code = qz.encode(weight_of(t, d, f));
                        b.push(code);
                        // The hot path scores Q8 postings by summing raw
                        // codes, so the max *code* is the exact per-stride
                        // bound in code space — quantization error cannot
                        // understate it.
                        let s = slot_of(row);
                        block_max[s] = block_max[s].max(code);
                    }
                    score_col = Some(b.finish());
                    quantizer = Some(qz);
                }
                Materialize::None => unreachable!(),
            }
        }

        let mut td = Table::new("TD");
        td.add_column(docid);
        td.add_column(tf);
        if let Some(score) = score_col {
            td.add_column(score);
        }

        // The block-max entries become a raw metadata column paged at
        // PAGE_VALUES, the same shape the segment writer persists and the
        // paged reopen serves through the buffer pool.
        let mut bm = ColumnBuilder::with_block_size("blockmax", Codec::Raw, PAGE_VALUES);
        bm.extend(&block_max);
        let block_max = Some(bm.finish());

        let term_ranges = (0..num_terms).map(|t| offsets[t]..offsets[t + 1]).collect();
        let term_dict = vocab
            .iter()
            .enumerate()
            .map(|(t, s)| (s.clone(), t as u32))
            .collect();

        InvertedIndex {
            config,
            td,
            meta: Metadata::Mem(MemMetadata {
                term_ranges,
                doc_names,
                doc_lens,
                doc_freqs,
                term_dict,
            }),
            num_terms,
            stats,
            quantizer,
            block_max,
        }
    }

    /// Assembles an index from the decoded parts of a persisted segment
    /// ([`crate::segment`]). No score re-materialization happens here — the
    /// score column (when present) comes back from disk bit-identical —
    /// and the collection statistics are restored from their exact bits in
    /// the segment meta, so a reopened index serves every strategy
    /// bit-identically to the one that was written without touching the
    /// document table.
    pub(crate) fn from_segment_parts(parts: crate::segment::SegmentParts) -> Self {
        let crate::segment::SegmentParts {
            config,
            stats,
            num_terms,
            paged,
            docid,
            tf,
            score,
            quantizer,
            block_max,
        } = parts;
        let mut td = Table::new("TD");
        td.add_column(docid);
        td.add_column(tf);
        if let Some(score) = score {
            td.add_column(score);
        }
        InvertedIndex {
            config,
            td,
            meta: Metadata::Paged(Box::new(paged)),
            num_terms,
            stats,
            quantizer,
            block_max,
        }
    }

    /// The build configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The TD table (docid/tf/score columns).
    pub fn td(&self) -> &Table {
        &self.td
    }

    /// TD row range of a term's posting list (empty for unseen terms).
    pub fn term_range(&self, term: u32) -> Range<usize> {
        match &self.meta {
            Metadata::Mem(m) => m.term_ranges.get(term as usize).cloned().unwrap_or(0..0),
            Metadata::Paged(p) => p.term_range(term),
        }
    }

    /// Resolves a term string to its id: a hash lookup for a built index,
    /// a fence-key + in-page binary search for a reopened segment.
    pub fn term_id(&self, term: &str) -> Option<u32> {
        match &self.meta {
            Metadata::Mem(m) => m.term_dict.get(term).copied(),
            Metadata::Paged(p) => p.term_id(term),
        }
    }

    /// `ftd`: number of documents containing the term.
    pub fn doc_freq(&self, term: u32) -> u32 {
        match &self.meta {
            Metadata::Mem(m) => m.doc_freqs.get(term as usize).copied().unwrap_or(0),
            Metadata::Paged(p) => p.doc_freq(term),
        }
    }

    /// Document name by docid (owned: a reopened segment stages the name's
    /// page rather than keeping every name resident).
    pub fn doc_name(&self, docid: u32) -> Option<String> {
        match &self.meta {
            Metadata::Mem(m) => m.doc_names.get(docid as usize).map(str::to_owned),
            Metadata::Paged(p) => p.doc_name(docid),
        }
    }

    /// Dense docid-indexed document lengths (the D table's `length`).
    /// For a reopened segment this materializes the paged column once, on
    /// first use — the relational (oracle) operators want a dense slice;
    /// the fused serving path reads lengths through block windows instead.
    pub fn doc_lens(&self) -> &Arc<Vec<i32>> {
        match &self.meta {
            Metadata::Mem(m) => &m.doc_lens,
            Metadata::Paged(p) => p.materialized_lens(),
        }
    }

    /// Number of documents in the collection.
    pub fn num_docs(&self) -> usize {
        self.stats.num_docs as usize
    }

    /// The per-batch metadata view the fused hot path reads through.
    pub(crate) fn meta_view(&self) -> MetaView<'_> {
        match &self.meta {
            Metadata::Mem(m) => MetaView::Mem {
                term_ranges: &m.term_ranges,
                doc_freqs: &m.doc_freqs,
                doc_lens: &m.doc_lens,
            },
            Metadata::Paged(p) => MetaView::Paged {
                offsets: &p.offsets,
                doc_freqs: &p.doc_freqs,
                doc_lens: &p.doc_lens,
                num_postings: p.num_postings,
                num_terms: p.num_terms,
            },
        }
    }

    /// Collection statistics for BM25.
    pub fn stats(&self) -> CollectionStats {
        self.stats
    }

    /// The fitted quantizer, when `Materialize::Quantized8` was used.
    pub fn quantizer(&self) -> Option<&Quantizer> {
        self.quantizer.as_ref()
    }

    /// Whether a materialized score column exists.
    pub fn has_materialized_scores(&self) -> bool {
        self.config.materialize != Materialize::None
    }

    /// The per-stride block-max column, when this index has one (built
    /// indexes always do; reopened segments only if the `BlockMax` section
    /// was written). `None` disables pruning — pruned strategies then run
    /// the exhaustive path, bit-identically.
    pub fn block_max(&self) -> Option<&Column> {
        self.block_max.as_ref()
    }

    /// Number of postings (TD rows).
    pub fn num_postings(&self) -> usize {
        self.td.row_count()
    }

    /// Number of terms in the vocabulary.
    pub fn num_terms(&self) -> usize {
        self.num_terms
    }

    /// The vocabulary in term-id order (inverts the term dictionary, or
    /// re-reads the sorted term pages; used by the segment writer).
    pub(crate) fn term_strings(&self) -> Vec<String> {
        match &self.meta {
            Metadata::Mem(m) => {
                let mut vocab = vec![String::new(); m.term_dict.len()];
                for (s, &t) in &m.term_dict {
                    vocab[t as usize] = s.clone();
                }
                vocab
            }
            Metadata::Paged(p) => p.all_terms(),
        }
    }

    /// Checks that the stored block-max metadata **dominates** the true
    /// per-stride maxima recomputed from the posting columns: stored max
    /// tf at least every tf in the stride, stored min doc length at most
    /// every posting's document length, stored score payload at least
    /// every posting's payload. An *understated* entry is a soundness bug
    /// — the pruned path could skip a stride holding a true top-k hit —
    /// so debug-mode segment opens run this as a typed-error check and
    /// the corruption proptest drives it with tampered columns. `Ok(())`
    /// when the index carries no metadata (pruning is then disabled,
    /// trivially sound).
    pub fn validate_block_max(&self) -> Result<(), &'static str> {
        match &self.block_max {
            Some(bm) => self.validate_block_max_column(bm),
            None => Ok(()),
        }
    }

    /// [`Self::validate_block_max`] against an arbitrary candidate column,
    /// so tests can validate deliberately tampered metadata without
    /// rebuilding an index.
    pub fn validate_block_max_column(&self, bm: &Column) -> Result<(), &'static str> {
        let entries = bm.read_all();
        let strides = self
            .num_postings()
            .div_ceil(x100_compress::ENTRY_POINT_STRIDE);
        if entries.len() != strides * BLOCK_MAX_SLOTS {
            return Err("block-max length disagrees with the posting count");
        }
        let docids = self
            .td
            .column("docid")
            .map_err(|_| "missing docid column")?
            .read_all();
        let tfs = self
            .td
            .column("tf")
            .map_err(|_| "missing tf column")?
            .read_all();
        let scores = match self.config.materialize {
            Materialize::None => None,
            _ => Some(
                self.td
                    .column("score")
                    .map_err(|_| "missing score column")?
                    .read_all(),
            ),
        };
        let doc_lens = self.doc_lens();
        for (row, (&d, &tf)) in docids.iter().zip(&tfs).enumerate() {
            let e = (row / x100_compress::ENTRY_POINT_STRIDE) * BLOCK_MAX_SLOTS;
            if entries[e] < tf {
                return Err("understated block-max tf");
            }
            let len = doc_lens
                .get(d as usize)
                .copied()
                .ok_or("block-max docid out of range")? as u32;
            if entries[e + 1] > len {
                return Err("overstated block-max min doc length");
            }
            if let Some(scores) = &scores {
                // F32 payloads are nonnegative-float bits (bit order ==
                // float order); Q8 payloads are raw codes. Either way a
                // plain u32 compare is the exact domination check.
                if entries[e + 2] < scores[row] {
                    return Err("understated block-max score bound");
                }
            }
            // An understated stride max docid would let a seek land past
            // postings it never examined.
            if entries[e + 3] < d {
                return Err("understated block-max docid");
            }
        }
        Ok(())
    }

    /// Bits per tuple of the named TD column — the §3.3 accounting.
    pub fn column_bits_per_tuple(&self, name: &str) -> f64 {
        self.td
            .column(name)
            .map(|c| c.bits_per_value())
            .unwrap_or(f64::NAN)
    }
}

/// Streams `(term, docid, tf)` triples over aligned compressed posting
/// columns, decoding **one block pair at a time** — O(block) resident
/// memory regardless of collection size. Both columns are built with the
/// same block size, so their block boundaries coincide.
struct PostingStream<'a> {
    docid: &'a Column,
    tf: &'a Column,
    offsets: &'a [usize],
    /// Next block index to decode.
    block: usize,
    /// Global row of the next item.
    row: usize,
    /// Current term (advanced so `offsets[term + 1] > row`).
    term: usize,
    dbuf: Vec<u32>,
    tbuf: Vec<u32>,
    /// Position of the next item within the decoded buffers.
    in_block: usize,
}

impl<'a> PostingStream<'a> {
    fn new(docid: &'a Column, tf: &'a Column, offsets: &'a [usize]) -> Self {
        debug_assert_eq!(docid.len(), tf.len());
        debug_assert_eq!(docid.block_size(), tf.block_size());
        PostingStream {
            docid,
            tf,
            offsets,
            block: 0,
            row: 0,
            term: 0,
            dbuf: Vec::new(),
            tbuf: Vec::new(),
            in_block: 0,
        }
    }
}

impl Iterator for PostingStream<'_> {
    type Item = (usize, u32, u32);

    fn next(&mut self) -> Option<Self::Item> {
        if self.in_block == self.dbuf.len() {
            if self.block == self.docid.block_count() {
                return None;
            }
            self.docid.block(self.block).decode_into(&mut self.dbuf);
            self.tf.block(self.block).decode_into(&mut self.tbuf);
            self.block += 1;
            self.in_block = 0;
        }
        // Skip empty terms until the current row falls in `term`'s range.
        while self.offsets[self.term + 1] <= self.row {
            self.term += 1;
        }
        let item = (
            self.term,
            self.dbuf[self.in_block],
            self.tbuf[self.in_block],
        );
        self.row += 1;
        self.in_block += 1;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_corpus::CollectionConfig;

    fn tiny_index(config: IndexConfig) -> (SyntheticCollection, InvertedIndex) {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &config);
        (c, idx)
    }

    #[test]
    fn postings_sorted_by_term_then_docid() {
        let (c, idx) = tiny_index(IndexConfig::uncompressed());
        let docids = idx.td().column("docid").unwrap().read_all();
        for t in 0..c.vocab.len() as u32 {
            let r = idx.term_range(t);
            let list = &docids[r.clone()];
            assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "term {t} posting list not strictly increasing"
            );
            assert_eq!(list.len(), idx.doc_freq(t) as usize);
        }
    }

    #[test]
    fn posting_lists_match_source_documents() {
        let (c, idx) = tiny_index(IndexConfig::uncompressed());
        let docids = idx.td().column("docid").unwrap().read_all();
        let tfs = idx.td().column("tf").unwrap().read_all();
        // Spot-check every posting of a mid-frequency term.
        let term = 10u32;
        let r = idx.term_range(term);
        for i in r {
            let (d, tf) = (docids[i], tfs[i]);
            let doc = &c.docs[d as usize];
            let found = doc
                .terms
                .binary_search_by_key(&term, |&(t, _)| t)
                .map(|j| doc.terms[j].1)
                .unwrap();
            assert_eq!(found, tf);
        }
    }

    #[test]
    fn compressed_and_raw_indexes_agree() {
        let (_, raw) = tiny_index(IndexConfig::uncompressed());
        let (_, comp) = tiny_index(IndexConfig::compressed());
        assert_eq!(
            raw.td().column("docid").unwrap().read_all(),
            comp.td().column("docid").unwrap().read_all()
        );
        assert_eq!(
            raw.td().column("tf").unwrap().read_all(),
            comp.td().column("tf").unwrap().read_all()
        );
    }

    #[test]
    fn compression_shrinks_hot_columns() {
        let (_, comp) = tiny_index(IndexConfig::compressed());
        assert!(comp.column_bits_per_tuple("docid") < 16.0);
        assert!(comp.column_bits_per_tuple("tf") < 10.0);
    }

    #[test]
    fn term_dictionary_resolves() {
        let (_, idx) = tiny_index(IndexConfig::uncompressed());
        assert_eq!(idx.term_id("term3"), Some(3));
        assert_eq!(idx.term_id("no-such-term"), None);
        assert_eq!(idx.term_range(9999), 0..0);
        assert_eq!(idx.doc_freq(9999), 0);
    }

    #[test]
    fn doc_metadata_accessible() {
        let (c, idx) = tiny_index(IndexConfig::uncompressed());
        assert_eq!(idx.doc_name(0).as_deref(), Some("doc-00000000"));
        assert_eq!(idx.doc_lens().len(), c.docs.len());
        assert_eq!(idx.doc_lens()[5], c.docs[5].len as i32);
        let avg = idx.stats().avg_doc_len;
        assert!((avg as f64 - c.avg_doc_len()).abs() < 1.0);
    }

    #[test]
    fn materialized_f32_scores_match_formula() {
        let (_, idx) = tiny_index(IndexConfig::materialized_f32());
        let bits = idx.td().column("score").unwrap().read_all();
        let docids = idx.td().column("docid").unwrap().read_all();
        let tfs = idx.td().column("tf").unwrap().read_all();
        let term = 10u32;
        let r = idx.term_range(term);
        for i in r {
            let expect = term_weight(
                idx.config().params,
                idx.stats(),
                idx.doc_freq(term),
                tfs[i],
                idx.doc_lens()[docids[i] as usize] as u32,
            );
            assert_eq!(f32::from_bits(bits[i]), expect, "slot {i}");
        }
    }

    #[test]
    fn quantized_scores_in_range_and_monotone_per_doc() {
        let (_, idx) = tiny_index(IndexConfig::materialized_q8());
        let codes = idx.td().column("score").unwrap().read_all();
        assert!(codes.iter().all(|&c| (1..=256).contains(&c)));
        assert!(idx.quantizer().is_some());
    }

    #[test]
    fn posting_stream_walks_terms_rows_and_blocks() {
        // 10 rows over 4 terms (term 1 empty), block size 128 → one block;
        // then again with tiny values to force multi-block decoding via a
        // 128-value column.
        let offsets = vec![0usize, 3, 3, 7, 10];
        let docids: Vec<u32> = (0..10).collect();
        let tfs: Vec<u32> = (10..20).collect();
        let docid = Column::from_values("docid", Codec::Raw, &docids);
        let tf = Column::from_values("tf", Codec::Raw, &tfs);
        let got: Vec<(usize, u32, u32)> = PostingStream::new(&docid, &tf, &offsets).collect();
        let terms: Vec<usize> = got.iter().map(|&(t, _, _)| t).collect();
        assert_eq!(terms, vec![0, 0, 0, 2, 2, 2, 2, 3, 3, 3]); // term 1 skipped
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, &(_, d, f))| { d == docids[i] && f == tfs[i] }));
        // Multi-block: 300 rows at block size 128 → 3 blocks.
        let offsets = vec![0usize, 300];
        let vals: Vec<u32> = (0..300).collect();
        let mut b = ColumnBuilder::with_block_size("docid", Codec::Pfor { width: 8 }, 128);
        b.extend(&vals);
        let docid = b.finish();
        let mut b = ColumnBuilder::with_block_size("tf", Codec::Pfor { width: 8 }, 128);
        b.extend(&vals);
        let tf = b.finish();
        assert_eq!(docid.block_count(), 3);
        let got: Vec<(usize, u32, u32)> = PostingStream::new(&docid, &tf, &offsets).collect();
        assert_eq!(got.len(), 300);
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, &(t, d, f))| { t == 0 && d == i as u32 && f == i as u32 }));
    }

    #[test]
    fn empty_collection_builds() {
        let mut cfg = CollectionConfig::tiny();
        cfg.num_docs = 0;
        cfg.num_eval_queries = 0;
        cfg.relevant_per_query = 0;
        let c = SyntheticCollection::generate(&cfg);
        let idx = InvertedIndex::build(&c, &IndexConfig::default());
        assert_eq!(idx.num_postings(), 0);
        assert_eq!(idx.term_range(0), 0..0);
    }
}
