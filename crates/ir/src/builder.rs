//! Incremental index construction — the scale path's build side.
//!
//! [`InvertedIndex::build`] wants the whole collection in memory; at
//! `medium`/`large` scale documents arrive in chunks from a
//! [`x100_corpus::CollectionStream`] and must be dropped as soon as their
//! postings are accounted. [`StreamingIndexBuilder`] accepts documents one
//! at a time (docids assigned densely in arrival order, matching the
//! stream's global order), accumulates per-term posting lists — which stay
//! docid-sorted for free because arrival order is docid order — and
//! [`finish`](StreamingIndexBuilder::finish)es into exactly the same
//! [`InvertedIndex`] the batch path produces.
//!
//! Peak memory is the postings themselves (8 bytes each, the same
//! intermediate the batch scatter uses) plus one document chunk, instead of
//! postings *plus* the whole materialized collection.

use x100_corpus::{CollectionStream, CollectionTail, Document};
use x100_storage::{StringColumn, StringColumnBuilder};

use crate::columns::IndexColumnsWriter;
use crate::index::{IndexConfig, InvertedIndex};

/// Builds an [`InvertedIndex`] from documents pushed in docid order.
///
/// ```
/// use x100_corpus::{CollectionConfig, SyntheticCollection};
/// use x100_ir::{IndexConfig, InvertedIndex, StreamingIndexBuilder};
///
/// let c = SyntheticCollection::generate(&CollectionConfig::tiny());
/// let mut b = StreamingIndexBuilder::new(c.vocab.len(), &IndexConfig::default());
/// for doc in &c.docs {
///     b.push_doc(&doc.name, &doc.terms, doc.len);
/// }
/// let streamed = b.finish(&c.vocab);
/// let batch = InvertedIndex::build(&c, &IndexConfig::default());
/// assert_eq!(streamed.num_postings(), batch.num_postings());
/// ```
#[derive(Debug)]
pub struct StreamingIndexBuilder {
    config: IndexConfig,
    num_terms: usize,
    /// Per-term posting list, packed `docid << 32 | tf` to keep the
    /// accumulator at 8 bytes per posting. Grown lazily to the highest
    /// term id actually seen, so sparse or empty-vocab-tail workloads
    /// never pay an O(vocab) allocation upfront.
    postings: Vec<Vec<u64>>,
    /// Paged name storage: names go straight into string-column pages as
    /// documents arrive, never held as one `String` allocation each.
    doc_names: StringColumnBuilder,
    doc_lens: Vec<i32>,
}

impl StreamingIndexBuilder {
    /// A builder over a vocabulary of `num_terms` term ids.
    pub fn new(num_terms: usize, config: &IndexConfig) -> Self {
        StreamingIndexBuilder {
            config: config.clone(),
            num_terms,
            postings: Vec::new(),
            doc_names: StringColumnBuilder::new("name"),
            doc_lens: Vec::new(),
        }
    }

    /// The builder's index configuration.
    pub(crate) fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Documents accepted so far (= the next docid to be assigned).
    pub fn num_docs(&self) -> usize {
        self.doc_lens.len()
    }

    /// Postings accumulated so far.
    pub fn num_postings(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }

    /// Accepts the next document and returns its assigned dense docid.
    ///
    /// `terms` must be sorted by term id with in-vocabulary ids, as
    /// [`Document::terms`] guarantees.
    ///
    /// # Panics
    /// Panics if a term id is out of range for the builder's vocabulary.
    pub fn push_doc(&mut self, name: &str, terms: &[(u32, u32)], len: u32) -> u32 {
        let docid = self.doc_lens.len() as u32;
        for &(t, tf) in terms {
            let slot = t as usize;
            assert!(
                slot < self.num_terms,
                "term id {t} out of range for vocabulary of {}",
                self.num_terms
            );
            if slot >= self.postings.len() {
                self.postings.resize_with(slot + 1, Vec::new);
            }
            self.postings[slot].push((u64::from(docid) << 32) | u64::from(tf));
        }
        self.doc_names.push(name);
        self.doc_lens.push(len as i32);
        docid
    }

    /// Accepts a chunk of documents in order (each keeps the docid the
    /// builder assigns, not the one in [`Document::id`] — partition-local
    /// builders renumber on purpose).
    pub fn push_docs<'a>(&mut self, docs: impl IntoIterator<Item = &'a Document>) {
        for doc in docs {
            self.push_doc(&doc.name, &doc.terms, doc.len);
        }
    }

    /// The document-length column accumulated so far (docid-indexed) — the
    /// spill path's merge borrows it to feed the columnar writer's
    /// block-max accumulator.
    pub(crate) fn doc_lens(&self) -> &[i32] {
        &self.doc_lens
    }

    /// Drains the per-term accumulator (document metadata stays), returning
    /// the packed posting lists indexed by term id — the spill path's flush
    /// hook. Lists beyond the highest term seen since the last drain are
    /// absent, matching the lazy growth.
    pub(crate) fn take_term_lists(&mut self) -> Vec<Vec<u64>> {
        std::mem::take(&mut self.postings)
    }

    /// Decomposes the builder into the parts the spill path's merge needs
    /// to assemble an index itself: configuration and the D-table columns.
    pub(crate) fn into_parts(self) -> (IndexConfig, StringColumn, Vec<i32>) {
        (self.config, self.doc_names.finish(), self.doc_lens)
    }

    /// Assembles the index. `vocab` maps term ids to strings and must cover
    /// every id the builder was constructed for.
    pub fn finish(self, vocab: &[String]) -> InvertedIndex {
        self.finish_with_peak(vocab).0
    }

    /// [`Self::finish`], additionally returning the finish phase's peak
    /// intermediate footprint in bytes: resident packed postings (drained
    /// term by term into the columnar writer, each list freed as soon as it
    /// is written) plus the writer's pending uncompressed blocks. The old
    /// path materialized whole `docid`/`tf` columns next to the postings —
    /// a 2× peak this streaming drain no longer pays.
    pub(crate) fn finish_with_peak(mut self, vocab: &[String]) -> (InvertedIndex, usize) {
        assert_eq!(
            vocab.len(),
            self.num_terms,
            "vocabulary size does not match the builder's term count"
        );
        let mut writer = IndexColumnsWriter::new(&self.config, self.num_terms);
        let lists = std::mem::take(&mut self.postings);
        let resident: usize = lists.iter().map(|l| l.len() * 8).sum();
        for (term, list) in lists.into_iter().enumerate() {
            if !list.is_empty() {
                let term = u32::try_from(term).expect("term ids seen via push_doc fit u32");
                writer.push_term(term, &list, &self.doc_lens);
            }
            // `list` drops here: accumulator memory is released
            // incrementally as the columns compress, not all at the end.
        }
        // Conservative joint peak: all postings resident at the start, plus
        // the writer's pending-block high-water (resident only shrinks as
        // buffered grows, so their true joint maximum never exceeds this).
        let finish_peak = resident + writer.peak_buffered_bytes();
        let cols = writer.finish();
        let (config, doc_names, doc_lens) = (self.config, self.doc_names.finish(), self.doc_lens);
        (
            InvertedIndex::from_columns(config, vocab, doc_names, doc_lens, cols),
            finish_peak,
        )
    }
}

/// Drives a [`CollectionStream`] to completion through a
/// [`StreamingIndexBuilder`]: generate → index without ever materializing
/// the collection. Returns the index together with the workload tail
/// (judged queries + efficiency log).
pub fn build_index_streaming(
    mut stream: CollectionStream,
    index_config: &IndexConfig,
    chunk_size: usize,
) -> (InvertedIndex, CollectionTail) {
    let vocab = stream.vocab();
    let mut builder = StreamingIndexBuilder::new(vocab.len(), index_config);
    while let Some(chunk) = stream.next_chunk(chunk_size) {
        builder.push_docs(&chunk);
    }
    let tail = stream.finish();
    (builder.finish(&vocab), tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_corpus::{CollectionConfig, SyntheticCollection};

    fn assert_indexes_equal(a: &InvertedIndex, b: &InvertedIndex, vocab_len: usize) {
        assert_eq!(a.num_postings(), b.num_postings());
        assert_eq!(
            a.td().column("docid").unwrap().read_all(),
            b.td().column("docid").unwrap().read_all()
        );
        assert_eq!(
            a.td().column("tf").unwrap().read_all(),
            b.td().column("tf").unwrap().read_all()
        );
        for t in 0..vocab_len as u32 {
            assert_eq!(a.term_range(t), b.term_range(t), "term {t}");
            assert_eq!(a.doc_freq(t), b.doc_freq(t), "term {t}");
        }
        assert_eq!(a.doc_lens(), b.doc_lens());
        assert_eq!(a.stats().num_docs, b.stats().num_docs);
        assert_eq!(a.stats().avg_doc_len, b.stats().avg_doc_len);
    }

    #[test]
    fn streaming_build_equals_batch_build() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        for config in [
            IndexConfig::uncompressed(),
            IndexConfig::compressed(),
            IndexConfig::materialized_f32(),
            IndexConfig::materialized_q8(),
        ] {
            let batch = InvertedIndex::build(&c, &config);
            let mut b = StreamingIndexBuilder::new(c.vocab.len(), &config);
            // Ragged chunking must not matter.
            for chunk in c.docs.chunks(37) {
                b.push_docs(chunk);
            }
            let streamed = b.finish(&c.vocab);
            assert_indexes_equal(&streamed, &batch, c.vocab.len());
            if config.materialize != crate::index::Materialize::None {
                assert_eq!(
                    streamed.td().column("score").unwrap().read_all(),
                    batch.td().column("score").unwrap().read_all()
                );
            }
        }
    }

    #[test]
    fn build_index_streaming_end_to_end() {
        let cfg = CollectionConfig::tiny();
        let c = SyntheticCollection::generate(&cfg);
        let batch = InvertedIndex::build(&c, &IndexConfig::compressed());
        let stream = x100_corpus::CollectionStream::new(&cfg);
        let (streamed, tail) = build_index_streaming(stream, &IndexConfig::compressed(), 64);
        assert_indexes_equal(&streamed, &batch, c.vocab.len());
        assert_eq!(tail.efficiency_log, c.efficiency_log);
        assert_eq!(streamed.term_id("term3"), Some(3));
        assert_eq!(streamed.doc_name(0).as_deref(), Some("doc-00000000"));
    }

    #[test]
    fn empty_builder_finishes() {
        let b = StreamingIndexBuilder::new(5, &IndexConfig::default());
        let idx = b.finish(&(0..5).map(|t| format!("term{t}")).collect::<Vec<_>>());
        assert_eq!(idx.num_postings(), 0);
        assert_eq!(idx.term_range(0), 0..0);
    }

    #[test]
    fn docids_assigned_densely() {
        let mut b = StreamingIndexBuilder::new(3, &IndexConfig::uncompressed());
        assert_eq!(b.push_doc("a", &[(0, 1)], 1), 0);
        assert_eq!(b.push_doc("b", &[(1, 2), (2, 1)], 3), 1);
        assert_eq!(b.num_docs(), 2);
        assert_eq!(b.num_postings(), 3);
    }

    #[test]
    fn lazy_allocation_tracks_max_seen_term() {
        // A huge vocabulary must not cost anything until terms appear.
        let mut b = StreamingIndexBuilder::new(100_000, &IndexConfig::uncompressed());
        assert!(b.postings.is_empty());
        b.push_doc("a", &[(3, 1)], 1);
        assert_eq!(b.postings.len(), 4);
        b.push_doc("b", &[(1, 2), (17, 1)], 3);
        assert_eq!(b.postings.len(), 18);
        let vocab: Vec<String> = (0..100_000).map(|t| format!("term{t}")).collect();
        let idx = b.finish(&vocab);
        assert_eq!(idx.num_postings(), 3);
        assert_eq!(idx.doc_freq(17), 1);
        assert_eq!(idx.doc_freq(99_999), 0);
        assert!(idx.term_range(99_999).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_vocab_term_panics() {
        let mut b = StreamingIndexBuilder::new(3, &IndexConfig::default());
        b.push_doc("a", &[(3, 1)], 1);
    }

    #[test]
    #[should_panic(expected = "vocabulary size")]
    fn vocab_mismatch_rejected() {
        let b = StreamingIndexBuilder::new(5, &IndexConfig::default());
        let _ = b.finish(&["only".to_owned()]);
    }
}
