//! Segment persistence under fire: restart differentials across every
//! search strategy, plus exhaustive corruption injection — every byte
//! flipped, every truncation length, and oversized declared sizes with
//! re-sealed checksums (so the structural validators, not the checksums,
//! are what must catch them). A corrupt segment must always fail open
//! with a typed [`SegmentError`]: never a panic, never an unbounded
//! allocation.

use std::sync::Arc;

use x100_corpus::{CollectionConfig, SyntheticCollection};
use x100_ir::{
    IndexConfig, InvertedIndex, QueryExecutor, SearchStrategy, SegmentError, StreamingIndexBuilder,
};
use x100_storage::{BufferManager, BufferMode, DiskModel};

const ALL_STRATEGIES: [SearchStrategy; 8] = [
    SearchStrategy::BoolAnd,
    SearchStrategy::BoolOr,
    SearchStrategy::Bm25,
    SearchStrategy::Bm25TwoPass,
    SearchStrategy::Bm25Materialized,
    SearchStrategy::Bm25MaterializedTwoPass,
    SearchStrategy::Bm25Pruned,
    SearchStrategy::Bm25MaterializedPruned,
];

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "x100-segment-persist-{name}-{}",
        std::process::id()
    ));
    p
}

/// A deliberately small index (few dozen docs, tiny vocabulary) whose
/// segment stays in the low kilobytes — small enough that byte-exhaustive
/// and truncation-exhaustive injection runs in moments.
fn small_index(config: &IndexConfig) -> InvertedIndex {
    let vocab: Vec<String> = (0..24).map(|t| format!("term{t}")).collect();
    let mut b = StreamingIndexBuilder::new(vocab.len(), config);
    for d in 0..40u32 {
        // Deterministic, skewed postings: low term ids appear often.
        let terms: Vec<(u32, u32)> = (0..24u32)
            .filter(|t| (d + t) % (t + 2) == 0)
            .map(|t| (t, 1 + (d + t) % 5))
            .collect();
        let len = terms.iter().map(|&(_, tf)| tf).sum::<u32>().max(1);
        b.push_doc(&format!("doc-{d:04}"), &terms, len);
    }
    b.finish(&vocab)
}

// ---------------------------------------------------------------------------
// Restart differential
// ---------------------------------------------------------------------------

/// Write → reopen cold in a pool small enough to evict continuously →
/// every strategy must return results bit-identical to the in-memory
/// index, even though each of its blocks is dropped and re-`pread`
/// multiple times along the way.
#[test]
fn reopened_segment_serves_all_strategies_bit_identically() {
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let mem_index = Arc::new(InvertedIndex::build(&c, &IndexConfig::materialized_q8()));
    let path = temp_path("differential");
    mem_index.write_segment(&path).unwrap();
    let seg_index = Arc::new(InvertedIndex::open_segment(&path).unwrap());

    let mem_exec = QueryExecutor::new(mem_index.clone());
    // A pool holding roughly one block forces eviction on practically
    // every touch: blocks are dropped and re-read from the file all run.
    let tiny_pool = Arc::new(BufferManager::with_mode(
        DiskModel::instant(),
        BufferMode::Cold,
        4 << 10,
    ));
    let seg_exec = QueryExecutor::with_buffer_manager(seg_index.clone(), tiny_pool);

    for strategy in ALL_STRATEGIES {
        for q in c.eval_queries.iter().take(10) {
            let mem = mem_exec.search(&q.terms, strategy, 20).expect("mem search");
            let seg = seg_exec.search(&q.terms, strategy, 20).expect("seg search");
            assert_eq!(
                seg.results, mem.results,
                "strategy {strategy:?} diverged after reopen"
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

// ---------------------------------------------------------------------------
// Corruption injection helpers
// ---------------------------------------------------------------------------

/// FNV-1a 64 — the segment format's checksum, reimplemented here so the
/// tests can *re-seal* deliberately corrupted files and prove the
/// structural validators (not just the checksums) reject them.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

fn put_u64(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Offset of the table of contents (from the header) and entry count.
fn toc_layout(file: &[u8]) -> (usize, usize) {
    let toc_offset = u64_at(file, 16) as usize;
    let count = u32::from_le_bytes(file[8..12].try_into().unwrap()) as usize;
    (toc_offset, count)
}

/// Re-seals the header checksum over bytes `[0..32)`.
fn reseal_header(file: &mut [u8]) {
    let sum = fnv(&file[0..32]);
    put_u64(file, 32, sum);
}

/// Re-seals the TOC trailer checksum over all entries.
fn reseal_toc(file: &mut [u8]) {
    let (toc_offset, count) = toc_layout(file);
    let sum = fnv(&file[toc_offset..toc_offset + count * 32]);
    put_u64(file, toc_offset + count * 32, sum);
}

/// Finds the TOC slot of a section by kind tag; returns the slot offset.
fn toc_slot(file: &[u8], kind: u32) -> usize {
    let (toc_offset, count) = toc_layout(file);
    (0..count)
        .map(|i| toc_offset + i * 32)
        .find(|&at| u32::from_le_bytes(file[at..at + 4].try_into().unwrap()) == kind)
        .unwrap_or_else(|| panic!("no section with kind {kind}"))
}

/// Recomputes a section's checksum from its (possibly patched) payload and
/// re-seals the TOC around it.
fn reseal_section(file: &mut [u8], kind: u32) {
    let slot = toc_slot(file, kind);
    let offset = u64_at(file, slot + 8) as usize;
    let len = u64_at(file, slot + 16) as usize;
    let sum = fnv(&file[offset..offset + len]);
    put_u64(file, slot + 24, sum);
    reseal_toc(file);
}

/// Opens patched bytes as a segment, expecting a typed error.
fn open_expecting_error(bytes: &[u8], what: &str) {
    let path = temp_path("inject");
    std::fs::write(&path, bytes).unwrap();
    let result = InvertedIndex::open_segment(&path);
    std::fs::remove_file(&path).unwrap();
    match result {
        Err(
            SegmentError::Corrupt(_)
            | SegmentError::Truncated
            | SegmentError::BadMagic(_)
            | SegmentError::BadVersion(_)
            | SegmentError::TooLarge(_)
            | SegmentError::Io(_),
        ) => {}
        Ok(_) => panic!("{what}: corrupt segment opened successfully"),
    }
}

fn pristine_segment(config: &IndexConfig) -> Vec<u8> {
    let index = small_index(config);
    let path = temp_path("pristine");
    index.write_segment(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

// ---------------------------------------------------------------------------
// Exhaustive injection suites
// ---------------------------------------------------------------------------

/// Every single byte of the file, XOR 0xFF: any substitution must fail
/// open — the checksums cover every payload byte, the padding bytes are
/// verified zero, and the checksum fields themselves then mismatch.
#[test]
fn every_flipped_byte_is_rejected() {
    let pristine = pristine_segment(&IndexConfig::materialized_q8());
    assert!(
        pristine.len() < 64 << 10,
        "fixture segment unexpectedly large: {} bytes",
        pristine.len()
    );
    let mut bytes = pristine.clone();
    for i in 0..pristine.len() {
        bytes[i] ^= 0xFF;
        open_expecting_error(&bytes, &format!("byte {i} flipped"));
        bytes[i] = pristine[i];
    }
}

/// Every truncation length from the empty file up to one byte short: the
/// open must fail (typically `Truncated`), never panic or read past EOF.
#[test]
fn every_truncation_length_is_rejected() {
    let pristine = pristine_segment(&IndexConfig::compressed());
    for len in 0..pristine.len() {
        open_expecting_error(&pristine[..len], &format!("truncated to {len} bytes"));
    }
}

/// Oversized and inconsistent *declared* sizes, each with every checksum
/// re-sealed so the structural validators are what must reject them —
/// and each crafted so a validator that trusted the declared size would
/// attempt an absurd allocation or out-of-bounds read.
#[test]
fn resealed_oversized_declarations_are_rejected() {
    const META: u32 = 1;
    const TERMS: u32 = 2;
    const COL_DOCID: u32 = 7;
    let pristine = pristine_segment(&IndexConfig::materialized_q8());

    // Declared file length far beyond the real file.
    let mut b = pristine.clone();
    put_u64(&mut b, 24, u64::MAX / 2);
    reseal_header(&mut b);
    open_expecting_error(&b, "oversized declared file length");

    // A TOC entry claiming a section of nearly 2^63 bytes.
    let mut b = pristine.clone();
    let slot = toc_slot(&b, TERMS);
    put_u64(&mut b, slot + 16, u64::MAX / 2);
    reseal_toc(&mut b);
    open_expecting_error(&b, "oversized declared section length");

    // META claiming ~2^61 documents: every doc-indexed section is now
    // "too short"; a reader that pre-allocated would die here.
    let mut b = pristine.clone();
    let meta_slot = toc_slot(&b, META);
    let meta_off = u64_at(&b, meta_slot + 8) as usize;
    put_u64(&mut b, meta_off + 40, u64::MAX / 8);
    reseal_section(&mut b, META);
    open_expecting_error(&b, "oversized declared document count");

    // META claiming ~2^61 terms.
    let mut b = pristine.clone();
    put_u64(&mut b, meta_off + 32, u64::MAX / 8);
    reseal_section(&mut b, META);
    open_expecting_error(&b, "oversized declared term count");

    // The Terms column header claiming ~2^60 values: the page count no
    // longer matches the fence directory.
    let mut b = pristine.clone();
    let terms_slot = toc_slot(&b, TERMS);
    let terms_off = u64_at(&b, terms_slot + 8) as usize;
    put_u64(&mut b, terms_off + 16, u64::MAX / 16);
    reseal_section(&mut b, TERMS);
    open_expecting_error(&b, "oversized terms page count");

    // Posting column claiming ~2^60 blocks (header field block_count).
    let mut b = pristine.clone();
    let col_slot = toc_slot(&b, COL_DOCID);
    let col_off = u64_at(&b, col_slot + 8) as usize;
    put_u64(&mut b, col_off + 24, u64::MAX / 16);
    reseal_section(&mut b, COL_DOCID);
    open_expecting_error(&b, "oversized declared block count");

    // Posting column claiming ~2^60 values with the real block directory.
    let mut b = pristine.clone();
    put_u64(&mut b, col_off + 16, u64::MAX / 16);
    reseal_section(&mut b, COL_DOCID);
    open_expecting_error(&b, "oversized declared value count");

    // A block-directory entry pushed past the section payload: the
    // prefix-sum directory must stay monotone and end exactly at the
    // payload's end.
    let mut b = pristine.clone();
    put_u64(&mut b, col_off + 32 + 8, u64::MAX / 4);
    reseal_section(&mut b, COL_DOCID);
    open_expecting_error(&b, "oversized block-directory entry");

    // Sanity: the pristine bytes still open after all that cloning.
    let path = temp_path("still-good");
    std::fs::write(&path, &pristine).unwrap();
    InvertedIndex::open_segment(&path).expect("pristine segment must open");
    std::fs::remove_file(&path).unwrap();
}

/// Structural damage to the new resident directories — the vocabulary
/// fence keys and the document-name page table — with every checksum
/// re-sealed, so the directory validators themselves must reject it.
#[test]
fn resealed_fence_and_directory_damage_is_rejected() {
    const TERMS_FENCES: u32 = 11;
    const NAMES_DIR: u32 = 12;
    let pristine = pristine_segment(&IndexConfig::materialized_q8());

    let fences_slot = toc_slot(&pristine, TERMS_FENCES);
    let fences_off = u64_at(&pristine, fences_slot + 8) as usize;
    // Fence page count inflated: disagrees with the terms column.
    let mut b = pristine.clone();
    b[fences_off + 8..fences_off + 12].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal_section(&mut b, TERMS_FENCES);
    open_expecting_error(&b, "oversized fence page count");

    // First page's record count zeroed: fence counts no longer sum to the
    // declared term count (and empty pages are illegal).
    let mut b = pristine.clone();
    b[fences_off + 12..fences_off + 16].copy_from_slice(&0u32.to_le_bytes());
    reseal_section(&mut b, TERMS_FENCES);
    open_expecting_error(&b, "zeroed fence record count");

    // First fence key's length pushed past the section payload.
    let mut b = pristine.clone();
    b[fences_off + 16..fences_off + 20].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal_section(&mut b, TERMS_FENCES);
    open_expecting_error(&b, "oversized fence key length");

    let dir_slot = toc_slot(&pristine, NAMES_DIR);
    let dir_off = u64_at(&pristine, dir_slot + 8) as usize;
    // Name-page count inflated: disagrees with the names column.
    let mut b = pristine.clone();
    b[dir_off + 8..dir_off + 12].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal_section(&mut b, NAMES_DIR);
    open_expecting_error(&b, "oversized names page count");

    // First start moved off zero: the directory must start at docid 0.
    let mut b = pristine.clone();
    b[dir_off + 12..dir_off + 16].copy_from_slice(&7u32.to_le_bytes());
    reseal_section(&mut b, NAMES_DIR);
    open_expecting_error(&b, "names directory not starting at zero");

    // Final start (== num_docs) inflated: disagrees with META.
    let mut b = pristine.clone();
    let dir_len = u64_at(&pristine, dir_slot + 16) as usize;
    b[dir_off + dir_len - 4..dir_off + dir_len].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal_section(&mut b, NAMES_DIR);
    open_expecting_error(&b, "names directory document count");
}

/// Oversized declarations inside the `BlockMax` section, each re-sealed:
/// the column validators (and the length-vs-posting-count reconciliation)
/// must reject them with typed errors, exactly like the posting columns.
#[test]
fn resealed_blockmax_damage_is_rejected() {
    const BLOCKMAX: u32 = 13;
    let pristine = pristine_segment(&IndexConfig::materialized_q8());
    let slot = toc_slot(&pristine, BLOCKMAX);
    let off = u64_at(&pristine, slot + 8) as usize;

    // Declared value count inflated to ~2^60: no longer one entry per
    // 128-posting stride.
    let mut b = pristine.clone();
    put_u64(&mut b, off + 16, u64::MAX / 16);
    reseal_section(&mut b, BLOCKMAX);
    open_expecting_error(&b, "oversized block-max value count");

    // Value count nudged by one stride entry — still internally
    // plausible, but it must disagree with
    // `num_postings.div_ceil(128) * 4`.
    let mut b = pristine.clone();
    let declared = u64_at(&b, off + 16);
    put_u64(&mut b, off + 16, declared + 4);
    reseal_section(&mut b, BLOCKMAX);
    open_expecting_error(&b, "off-by-one-stride block-max value count");

    // Declared block count inflated: the page directory no longer matches.
    let mut b = pristine.clone();
    put_u64(&mut b, off + 24, u64::MAX / 16);
    reseal_section(&mut b, BLOCKMAX);
    open_expecting_error(&b, "oversized block-max block count");

    // A block-directory entry pushed past the section payload.
    let mut b = pristine.clone();
    put_u64(&mut b, off + 32 + 8, u64::MAX / 4);
    reseal_section(&mut b, BLOCKMAX);
    open_expecting_error(&b, "oversized block-max directory entry");

    // TOC length of the section itself inflated.
    let mut b = pristine.clone();
    put_u64(&mut b, slot + 16, u64::MAX / 2);
    reseal_toc(&mut b);
    open_expecting_error(&b, "oversized block-max section length");
}

/// Rewrites `pristine` with one section removed: its payload zeroed into
/// inter-section padding, its TOC entry spliced out, and every checksum
/// re-sealed — a byte-exact model of a segment written before that
/// section kind existed.
fn strip_section(pristine: &[u8], kind: u32) -> Vec<u8> {
    let mut b = pristine.to_vec();
    let slot = toc_slot(&b, kind);
    let off = u64_at(&b, slot + 8) as usize;
    let len = u64_at(&b, slot + 16) as usize;
    b[off..off + len].fill(0);
    let (toc_offset, count) = toc_layout(&b);
    let toc_end = toc_offset + count * 32;
    b.copy_within(slot + 32..toc_end, slot);
    // One entry fewer: the trailer checksum moves up 32 bytes and the
    // file shrinks with it.
    b.truncate(toc_end - 32 + 8);
    let new_len = b.len() as u64;
    b[8..12].copy_from_slice(&((count - 1) as u32).to_le_bytes());
    put_u64(&mut b, 24, new_len);
    reseal_header(&mut b);
    reseal_toc(&mut b);
    b
}

/// A segment with no `BlockMax` section — the pre-pruning format — must
/// still open, and the pruned strategies must silently fall back to the
/// exhaustive path, bit-identical to the in-memory index.
#[test]
fn segment_without_blockmax_serves_pruned_queries_exhaustively() {
    const BLOCKMAX: u32 = 13;
    let index = small_index(&IndexConfig::materialized_q8());
    let path = temp_path("noblockmax");
    index.write_segment(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    let stripped = strip_section(&pristine, BLOCKMAX);
    std::fs::write(&path, &stripped).unwrap();
    let reopened = InvertedIndex::open_segment(&path)
        .expect("a segment without BlockMax predates pruning and must open");
    std::fs::remove_file(&path).unwrap();
    assert!(
        reopened.block_max().is_none(),
        "stripped segment must come back without block-max metadata"
    );

    let seg_exec = QueryExecutor::new(Arc::new(reopened));
    let mem_exec = QueryExecutor::new(Arc::new(index));
    let queries: [&[u32]; 5] = [&[0, 1, 2], &[3, 5, 8, 13], &[2], &[0, 23], &[7, 9, 11, 20]];
    for strategy in [
        SearchStrategy::Bm25Pruned,
        SearchStrategy::Bm25MaterializedPruned,
    ] {
        for q in queries {
            let mem = mem_exec.search(q, strategy, 10).expect("mem search");
            let seg = seg_exec.search(q, strategy, 10).expect("seg search");
            assert_eq!(
                seg.results, mem.results,
                "pruned fallback diverged for {strategy:?} on {q:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Understated-bound soundness
// ---------------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A deliberately understated block-max entry — lower max tf, higher
    /// min doc length, lower score bound, or lower max docid — is
    /// *invisible to checksums* (the file stays internally consistent)
    /// but would let the pruned path skip a stride holding a true top-k
    /// hit. The debug-mode soundness validator must catch every such
    /// tamper, on any stride and any slot; the pristine metadata must
    /// pass it.
    #[test]
    fn understated_block_max_is_caught(pick in any::<u64>(), slot in 0usize..4) {
        let index = small_index(&IndexConfig::materialized_q8());
        prop_assert!(index.validate_block_max().is_ok(), "pristine metadata must validate");
        let bm = index.block_max().expect("built index carries block-max");
        let mut vals = bm.read_all();
        let stride = (pick as usize) % (vals.len() / 4);
        let at = stride * 4 + slot;
        // The stored entries are the *exact* per-stride extrema, so any
        // one-step move in the unsound direction understates the bound.
        // Slot 1 is a minimum (tamper up); slots 0, 2 and 3 are maxima
        // (tamper down; a zero maximum cannot be understated, so fall
        // back to the always-tamperable min-length slot).
        let at = if slot != 1 && vals[at] == 0 { stride * 4 + 1 } else { at };
        if at % 4 == 1 {
            vals[at] += 1;
        } else {
            vals[at] -= 1;
        }
        let tampered = x100_storage::Column::from_values(
            "blockmax",
            x100_compress::Codec::Raw,
            &vals,
        );
        prop_assert!(
            index.validate_block_max_column(&tampered).is_err(),
            "understated entry at stride {stride} slot {} escaped the validator",
            at % 4
        );
    }
}

// ---------------------------------------------------------------------------
// Crash-safe persist
// ---------------------------------------------------------------------------

/// Helper process body for the kill test below: rewrites one segment in a
/// tight loop until killed. Runs only when spawned with the env var set.
#[test]
#[ignore = "helper: spawned by interrupted_writer_never_leaves_a_partial_target"]
fn kill_child_writer_loop() {
    let Ok(dir) = std::env::var("X100_SEG_KILL_DIR") else {
        return;
    };
    let index = small_index(&IndexConfig::compressed());
    let target = std::path::Path::new(&dir).join("victim.x1sg");
    loop {
        index.write_segment(&target).unwrap();
    }
}

/// Kill a process mid-persist: because the writer streams into a temp file
/// and renames atomically after fsync, the target path must afterwards be
/// either absent or a complete segment that opens cleanly — never a
/// plausible-looking partial file.
#[test]
fn interrupted_writer_never_leaves_a_partial_target() {
    use std::process::{Command, Stdio};
    let dir = temp_path("kill-dir");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(&exe)
        .args(["kill_child_writer_loop", "--ignored", "--exact"])
        .env("X100_SEG_KILL_DIR", &dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn writer child");
    // Wait until the child is actually persisting (any file appears in the
    // scratch dir), then kill it at an arbitrary point of its write loop.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let busy = std::fs::read_dir(&dir).unwrap().next().is_some();
        if busy {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "writer child never started persisting"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    child.kill().expect("kill writer child");
    child.wait().expect("reap writer child");
    let target = dir.join("victim.x1sg");
    if target.exists() {
        InvertedIndex::open_segment(&target)
            .expect("a target path left by an interrupted persist must be a complete segment");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
