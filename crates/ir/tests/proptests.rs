//! Property tests for the spill path: the k-way run merge against a naive
//! collect-and-sort oracle on adversarial run shapes (empty runs,
//! single-term runs, duplicate-heavy terms, interleaved docid ranges), and
//! the spilling builder against the in-memory streaming builder at
//! arbitrary budgets.

use std::collections::BTreeMap;

use proptest::prelude::*;
use x100_ir::{
    merge_run_sources, IndexConfig, SpillConfig, SpillingIndexBuilder, StreamingIndexBuilder,
};
use x100_storage::MemRun;

/// Runs as plain segment lists (ascending terms within each run — the
/// on-disk invariant — but postings and term overlap across runs are
/// unconstrained).
fn runs_strategy(
    max_term: u32,
    max_runs: usize,
) -> impl Strategy<Value = Vec<Vec<(u32, Vec<u64>)>>> {
    prop::collection::vec(
        prop::collection::btree_map(
            0u32..max_term,
            prop::collection::vec(any::<u64>(), 1..5),
            0..6,
        )
        .prop_map(|m| m.into_iter().collect::<Vec<_>>()),
        0..max_runs,
    )
}

/// The oracle: dump every (term, posting) pair into one map, sort each
/// term's postings by packed word — no heaps, no streaming.
fn collect_and_sort(runs: &[Vec<(u32, Vec<u64>)>]) -> Vec<(u32, Vec<u64>)> {
    let mut all: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for run in runs {
        for (term, postings) in run {
            all.entry(*term).or_default().extend_from_slice(postings);
        }
    }
    for postings in all.values_mut() {
        postings.sort_unstable();
    }
    all.into_iter().collect()
}

fn merge(runs: &[Vec<(u32, Vec<u64>)>]) -> Vec<(u32, Vec<u64>)> {
    let sources: Vec<MemRun> = runs.iter().cloned().map(MemRun::new).collect();
    let mut got = Vec::new();
    merge_run_sources(sources, |term, postings| {
        got.push((term, postings.to_vec()));
        Ok(())
    })
    .unwrap();
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Duplicate-heavy: a 6-term universe shared by up to 7 runs, so most
    /// terms appear in several runs and must be concatenated + re-sorted.
    #[test]
    fn merge_matches_oracle_on_duplicate_heavy_runs(runs in runs_strategy(6, 8)) {
        prop_assert_eq!(merge(&runs), collect_and_sort(&runs));
    }

    /// Sparse: a wide term universe, so most terms appear in exactly one
    /// run and whole runs may be disjoint or empty.
    #[test]
    fn merge_matches_oracle_on_sparse_runs(runs in runs_strategy(10_000, 6)) {
        let merged = merge(&runs);
        prop_assert_eq!(&merged, &collect_and_sort(&runs));
        // Output terms strictly ascend and no segment is empty.
        prop_assert!(merged.windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert!(merged.iter().all(|(_, p)| !p.is_empty()));
    }

    /// The spilling builder is the streaming builder, for *any* budget —
    /// including budgets far below a single document, which spill on every
    /// push.
    #[test]
    fn spilling_builder_matches_streaming_at_any_budget(
        docs in prop::collection::vec(
            prop::collection::btree_map(0u32..40, 1u32..4, 1..10)
                .prop_map(|m| m.into_iter().collect::<Vec<_>>()),
            1..50,
        ),
        budget in 1usize..4000,
    ) {
        const NUM_TERMS: usize = 40;
        let vocab: Vec<String> = (0..NUM_TERMS).map(|t| format!("term{t}")).collect();
        let config = IndexConfig::compressed();
        let mut mem = StreamingIndexBuilder::new(NUM_TERMS, &config);
        let mut spill =
            SpillingIndexBuilder::new(NUM_TERMS, &config, SpillConfig::with_budget(budget));
        for (i, terms) in docs.iter().enumerate() {
            let len: u32 = terms.iter().map(|&(_, tf)| tf).sum();
            let name = format!("d{i}");
            mem.push_doc(&name, terms, len);
            spill.push_doc(&name, terms, len).unwrap();
        }
        let expect = mem.finish(&vocab);
        let (got, stats) = spill.finish(&vocab).unwrap();
        prop_assert_eq!(got.num_postings(), expect.num_postings());
        prop_assert_eq!(
            got.td().column("docid").unwrap().read_all(),
            expect.td().column("docid").unwrap().read_all()
        );
        prop_assert_eq!(
            got.td().column("tf").unwrap().read_all(),
            expect.td().column("tf").unwrap().read_all()
        );
        for t in 0..NUM_TERMS as u32 {
            prop_assert_eq!(got.doc_freq(t), expect.doc_freq(t));
        }
        // The accumulator never exceeded max(budget, largest single doc).
        let max_doc = docs.iter().map(|d| d.len() * 8).max().unwrap_or(0);
        prop_assert!(stats.peak_accum_bytes <= budget.max(max_doc));
    }
}
